//! Scheduling policies (paper §3.4–§3.5).
//!
//! A policy produces a [`Plan`]: the initial per-device queue assignment,
//! the serial scheduling overhead it incurred (sampling, canary runs), the
//! work-stealing permission matrix, and whether transfers are pipelined.
//! The runtime then plays the plan out in virtual time, stealing HLOPs
//! between queues as devices drain.
//!
//! Implemented policies:
//!
//! * **Even distribution** — naive static 50/50 round-robin between the GPU
//!   and the Edge TPU, no stealing, synchronous transfers (the paper's
//!   quality-unaware reference that loses on 6 of 10 benchmarks).
//! * **Work stealing** (§3.4) — even initial split across all devices, any
//!   device steals from the most loaded queue.
//! * **QAWS** (§3.5) — work stealing with criticality sampling; assignment
//!   by *device limits* (Algorithm 1) or *Top-K* (Algorithm 2), sampling by
//!   striding / uniform-random / reduction (Algorithms 3–5); stealing
//!   restricted so lower-accuracy devices never take higher-accuracy work.
//! * **IRA sampling** — the full input-responsiveness baseline: canary
//!   *computations* per partition (accurate but expensive, ~45% slowdown).
//! * **Oracle** — true per-partition NPU error measured offline, not
//!   charged any time (the paper's manually-optimized quality reference).

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;
use shmt_trace::{EventKind, NullSink, TraceSink};

use crate::criticality::{CriticalityMetric, CriticalityStats};
use crate::hlop::Hlop;
use crate::sampling::{sample_partition_into, SamplingMethod};
use crate::vop::Vop;

/// Index of a device queue. By the paper's convention the GPU queue is
/// index 0 and the Edge TPU queue the last index; we insert the CPU
/// (exact, like the GPU) in between.
pub type QueueIndex = usize;

/// Queue index of the GPU.
pub const GPU: QueueIndex = 0;
/// Queue index of the CPU.
pub const CPU: QueueIndex = 1;
/// Queue index of the Edge TPU.
pub const TPU: QueueIndex = 2;

/// Accuracy class per queue index: lower is more accurate. The GPU and CPU
/// compute exact fp32; the Edge TPU is approximate int8.
pub const ACCURACY_CLASS: [u8; 3] = [0, 0, 1];

/// The QAWS hardware-assignment flavor (the `T`/`L` in QAWS-XY).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QawsAssignment {
    /// Algorithm 1: device-dependent criticality limits.
    DeviceLimits,
    /// Algorithm 2: application-dependent top-K% ranking within windows.
    TopK,
}

/// A scheduling policy for one VOP execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Static even split between GPU and Edge TPU; no stealing.
    EvenDistribution,
    /// The basic work-stealing scheduler (§3.4).
    WorkStealing,
    /// Quality-aware work stealing (§3.5).
    Qaws {
        /// Hardware assignment flavor.
        assignment: QawsAssignment,
        /// Sampling mechanism.
        sampling: SamplingMethod,
    },
    /// The full IRA canary baseline.
    IraSampling,
    /// Offline-oracle criticality assignment.
    Oracle,
}

impl Policy {
    /// The six QAWS variants in the paper's order (TS, TU, TR, LS, LU, LR).
    pub fn qaws_variants() -> [Policy; 6] {
        use QawsAssignment::*;
        use SamplingMethod::*;
        [
            Policy::Qaws {
                assignment: TopK,
                sampling: Striding,
            },
            Policy::Qaws {
                assignment: TopK,
                sampling: UniformRandom,
            },
            Policy::Qaws {
                assignment: TopK,
                sampling: Reduction,
            },
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: Striding,
            },
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: UniformRandom,
            },
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: Reduction,
            },
        ]
    }

    /// Display name matching the paper's figure legends. Static strings:
    /// policy names are rendered on every report row and bench label, and
    /// the serve path formats them per request — no heap behind them.
    pub fn name(&self) -> &'static str {
        use QawsAssignment::*;
        use SamplingMethod::*;
        match self {
            Policy::EvenDistribution => "even distribution",
            Policy::WorkStealing => "work-stealing",
            Policy::Qaws {
                assignment: TopK,
                sampling: Striding,
            } => "QAWS-TS",
            Policy::Qaws {
                assignment: TopK,
                sampling: UniformRandom,
            } => "QAWS-TU",
            Policy::Qaws {
                assignment: TopK,
                sampling: Reduction,
            } => "QAWS-TR",
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: Striding,
            } => "QAWS-LS",
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: UniformRandom,
            } => "QAWS-LU",
            Policy::Qaws {
                assignment: DeviceLimits,
                sampling: Reduction,
            } => "QAWS-LR",
            Policy::IraSampling => "IRA-sampling",
            Policy::Oracle => "oracle",
        }
    }

    /// Whether transfers/casts are double-buffered under this policy. Only
    /// the naive even distribution runs synchronously.
    pub fn pipelined(&self) -> bool {
        !matches!(self, Policy::EvenDistribution)
    }
}

/// Tuning knobs for the quality-aware policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Sampling rate (fraction of partition elements sampled; Fig 9 sweeps
    /// 2⁻²¹…2⁻¹⁴). Default 2⁻¹⁵, the paper's sweet spot.
    pub sampling_rate: f64,
    /// Criticality metric over the samples.
    pub metric: CriticalityMetric,
    /// Window size W for Top-K ranking (Algorithm 2).
    pub window: usize,
    /// Device-limit factor: the Edge TPU accepts partitions whose
    /// criticality is below `limit_factor x median partition criticality`.
    /// The hardware limit binds harder than Top-K ranking (the paper finds
    /// the rank-based approach lets the TPU take more partitions, §5.2).
    pub limit_factor: f32,
    /// Fraction of each partition executed as the IRA canary (for the
    /// quality estimate).
    pub ira_canary_frac: f64,
    /// IRA's end-to-end time overhead as a multiple of the ideal GPU
    /// kernel time — the full technique executes canaries through every
    /// candidate approximation configuration before committing, which the
    /// paper measures at a 45% end-to-end slowdown.
    pub ira_time_factor: f64,
    /// Ablation knob: drop QAWS's accuracy-ordered steal restriction and
    /// let any device steal any queue (quality-unsafe).
    pub unrestricted_steal: bool,
    /// Seed for random sampling.
    pub seed: u64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            sampling_rate: 2.0f64.powi(-15),
            metric: CriticalityMetric::default(),
            window: 16,
            limit_factor: 1.2,
            ira_canary_frac: 1.0 / 8.0,
            ira_time_factor: 1.45,
            unrestricted_steal: false,
            seed: 0x0051_11AD,
        }
    }
}

/// A policy's output: initial queues, overhead, and stealing rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Initial queue contents per device index (front = next to run).
    /// Fixed-size spine (one slot per device); the inner vectors come
    /// from the runtime arena and are recycled after the plan is played.
    pub queues: [Vec<Hlop>; 3],
    /// Serial scheduler-side overhead in seconds (sampling, canaries).
    pub overhead_s: f64,
    /// Whether casts/transfers overlap compute.
    pub pipelined: bool,
    /// `steal[thief][victim]` — may `thief` take pending HLOPs from
    /// `victim`'s queue?
    pub steal: [[bool; 3]; 3],
}

impl Plan {
    /// Total HLOPs across all queues.
    pub fn total_hlops(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Returns the plan's queue spines to the runtime arena.
    pub fn recycle(self) {
        for q in self.queues {
            crate::arena::HLOPS.put(q);
        }
    }
}

/// Three empty per-device queues with pooled spines.
fn pooled_queues() -> [Vec<Hlop>; 3] {
    [
        crate::arena::HLOPS.take(),
        crate::arena::HLOPS.take(),
        crate::arena::HLOPS.take(),
    ]
}

/// Unrestricted stealing between distinct devices.
fn steal_any() -> [[bool; 3]; 3] {
    let mut m = [[true; 3]; 3];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = false;
    }
    m
}

/// No stealing at all.
fn steal_none() -> [[bool; 3]; 3] {
    [[false; 3]; 3]
}

/// Accuracy-restricted stealing (§3.5): a device may steal only from a
/// victim whose accuracy class is the same or lower (a higher-accuracy
/// device can absorb approximate-eligible work; the Edge TPU can never
/// take work reserved for exact hardware).
fn steal_accuracy_ordered() -> [[bool; 3]; 3] {
    let mut m = [[false; 3]; 3];
    for thief in 0..3 {
        for victim in 0..3 {
            if thief != victim && ACCURACY_CLASS[thief] <= ACCURACY_CLASS[victim] {
                m[thief][victim] = true;
            }
        }
    }
    m
}

/// Device throughputs the planner needs to price scheduling overheads,
/// plus the adaptive layer's knobs on planning policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanContext {
    /// GPU sustained throughput (work units/s).
    pub gpu_throughput: f64,
    /// Adaptive multiplier on the Edge TPU's admission aperture
    /// ([`crate::calibration::AdaptiveCalibration::tpu_admission`]):
    /// scales the QAWS window share left to the TPU under Top-K and the
    /// TPU's criticality limit under DeviceLimits. `1.0` reproduces the
    /// static planner bit-for-bit; `0.0` evicts the TPU from planning.
    pub tpu_admission: f64,
    /// Fraction of this VOP's input already resident in Edge-TPU memory
    /// (the DAG layer's residency-aware dispatch hint). Widens the
    /// effective admission by `1 + tpu_residency`: data that is already
    /// on the device has paid its staging cost, so the planner may hand
    /// the TPU a larger share. The neutral `0.0` multiplies by exactly
    /// 1.0 and keeps every plan bit-identical.
    pub tpu_residency: f64,
}

impl PlanContext {
    /// A static-planner context (neutral admission, no residency) for
    /// the given GPU throughput.
    pub fn new(gpu_throughput: f64) -> Self {
        PlanContext {
            gpu_throughput,
            tpu_admission: 1.0,
            tpu_residency: 0.0,
        }
    }

    /// The TPU admission aperture after the residency widening.
    pub fn effective_admission(&self) -> f64 {
        self.tpu_admission * (1.0 + self.tpu_residency)
    }
}

/// Scales the Top-K accurate-queue count by shrinking the TPU's share
/// of each window: `w - k` partitions per window go approximate under
/// the static planner; the admission multiplier scales that share.
/// `admission == 1.0` returns `k` exactly.
fn adapt_top_k(k: usize, w: usize, admission: f64) -> usize {
    let tpu_share = (w.saturating_sub(k) as f64 * admission).round() as usize;
    w.saturating_sub(tpu_share.min(w))
}

/// Builds the plan for `policy` over the partitioned VOP.
pub fn plan(
    policy: Policy,
    vop: &Vop,
    hlops: &[Hlop],
    quality: &QualityConfig,
    ctx: PlanContext,
) -> Plan {
    plan_traced(policy, vop, hlops, quality, ctx, &mut NullSink)
}

/// [`plan`], emitting `SampleOverhead` events into `sink`: one per
/// partition, stamped at the instant the partition's share of the serial
/// overhead window ends, so the events tile `[0, overhead_s]` exactly.
pub fn plan_traced(
    policy: Policy,
    vop: &Vop,
    hlops: &[Hlop],
    quality: &QualityConfig,
    ctx: PlanContext,
    sink: &mut dyn TraceSink,
) -> Plan {
    match policy {
        Policy::EvenDistribution => {
            // Round-robin between GPU and Edge TPU only (§5.2).
            let mut queues = pooled_queues();
            for (i, h) in hlops.iter().enumerate() {
                queues[if i % 2 == 0 { GPU } else { TPU }].push(*h);
            }
            // Even distribution is naive about *where* work goes, not about
            // how transfers run: double buffering is part of the runtime
            // infrastructure (§5.6), so it stays pipelined.
            Plan {
                queues,
                overhead_s: 0.0,
                pipelined: true,
                steal: steal_none(),
            }
        }
        Policy::WorkStealing => {
            // Even initial split across all devices (§3.4), free stealing.
            let mut queues = pooled_queues();
            for (i, h) in hlops.iter().enumerate() {
                queues[i % 3].push(*h);
            }
            Plan {
                queues,
                overhead_s: 0.0,
                pipelined: true,
                steal: steal_any(),
            }
        }
        Policy::Qaws {
            assignment,
            sampling,
        } => {
            // Scores and class decisions live in pooled spines: the
            // whole QAWS planning pass is allocation-free once warm.
            let mut scores = crate::arena::SCORES.take();
            let cost = sample_scores_into(vop, hlops, sampling, quality, sink, &mut scores);
            let mut classes = crate::arena::CLASSES.take();
            match assignment {
                QawsAssignment::DeviceLimits => {
                    // The admission multiplier scales the TPU's
                    // criticality limit; x1.0 is bitwise exact.
                    let factor = quality.limit_factor * ctx.effective_admission() as f32;
                    let limits = device_limits_pair(&scores, factor);
                    algorithm1_into(&scores, &limits, &mut classes);
                }
                QawsAssignment::TopK => {
                    let k = (vop.criticality_hint() * quality.window as f64).round() as usize;
                    let k = adapt_top_k(k, quality.window, ctx.effective_admission());
                    algorithm2_into(&scores, k.max(1), quality.window, &mut classes);
                }
            }
            let queues = queues_from_classes(hlops, &scores, &classes);
            crate::arena::SCORES.put(scores);
            crate::arena::CLASSES.put(classes);
            Plan {
                queues,
                overhead_s: cost,
                pipelined: true,
                steal: if quality.unrestricted_steal {
                    steal_any()
                } else {
                    steal_accuracy_ordered()
                },
            }
        }
        Policy::IraSampling => {
            // Full IRA: canary computations through both paths give a real
            // per-partition quality estimate, at a cost comparable to
            // re-running the kernel (paper: 45% end-to-end slowdown).
            let (errors, _) = canary_errors(vop, hlops, quality.ira_canary_frac);
            let total_work: f64 = hlops.iter().map(|h| h.elements() as f64).sum::<f64>()
                * vop.kernel().work_per_element();
            let overhead_s = quality.ira_time_factor * total_work / ctx.gpu_throughput.max(1.0);
            if sink.enabled() && !hlops.is_empty() {
                // The canary cost is charged as one serial window; attribute
                // an equal share to each partition so the trace shows where
                // the IRA slowdown goes.
                let share = overhead_s / hlops.len() as f64;
                for (i, h) in hlops.iter().enumerate() {
                    sink.record(
                        (i + 1) as f64 * share,
                        EventKind::SampleOverhead {
                            hlop: h.id,
                            cost_s: share,
                        },
                    );
                }
            }
            let indices = rank_assignment(&errors, vop.criticality_hint());
            Plan {
                queues: queues_from_classes(hlops, &errors, &indices),
                overhead_s,
                pipelined: true,
                steal: steal_accuracy_ordered(),
            }
        }
        Policy::Oracle => {
            // True full-partition error, free of charge: the "manually
            // identified critical regions" reference.
            let (errors, _) = canary_errors(vop, hlops, 1.0);
            let indices = rank_assignment(&errors, vop.criticality_hint());
            Plan {
                queues: queues_from_classes(hlops, &errors, &indices),
                overhead_s: 0.0,
                pipelined: true,
                steal: steal_accuracy_ordered(),
            }
        }
    }
}

/// Samples every partition and scores its criticality into `scores`
/// (cleared first); returns the total serial sampling cost. One pooled
/// value buffer is reused across every partition's draw.
fn sample_scores_into(
    vop: &Vop,
    hlops: &[Hlop],
    method: SamplingMethod,
    quality: &QualityConfig,
    sink: &mut dyn TraceSink,
    scores: &mut Vec<f32>,
) -> f64 {
    let input = &vop.inputs()[0];
    let mut cost = 0.0;
    let mut values = crate::arena::SAMPLES.take();
    scores.clear();
    scores.reserve(hlops.len());
    for h in hlops {
        let cost_s = sample_partition_into(
            input,
            h.tile,
            method,
            quality.sampling_rate,
            quality.seed,
            &mut values,
        );
        cost += cost_s;
        if sink.enabled() {
            // Stamped at the end of this partition's slice of the
            // serial sampling window.
            sink.record(cost, EventKind::SampleOverhead { hlop: h.id, cost_s });
        }
        scores.push(CriticalityStats::from_samples(&values).score(quality.metric));
    }
    crate::arena::SAMPLES.put(values);
    cost
}

/// Algorithm 1 (Device Limitation): assign each partition to the least
/// accurate device whose criticality limit admits its sampled score,
/// defaulting to the most accurate queue.
///
/// `limits` is `(limit, queue_index)` sorted ascending by limit — i.e. from
/// the most limited (least accurate) device upward, which realizes the
/// paper's "assigns only data inputs lower than the criticality limits to
/// that computing resource".
pub fn algorithm1_device_limits(scores: &[f32], limits: &[(f32, QueueIndex)]) -> Vec<QueueIndex> {
    let mut out = Vec::new();
    algorithm1_into(scores, limits, &mut out);
    out
}

/// Out-param form of [`algorithm1_device_limits`]: clears and refills
/// `out`, so the planner's warm path can reuse a pooled spine.
fn algorithm1_into(scores: &[f32], limits: &[(f32, QueueIndex)], out: &mut Vec<QueueIndex>) {
    out.clear();
    out.extend(scores.iter().map(|&s| {
        let mut q = GPU; // default: the most accurate queue
        for &(limit, queue) in limits {
            if s < limit {
                q = queue;
                break;
            }
        }
        q
    }));
}

/// Derives the Edge TPU's criticality limit from the score distribution:
/// `limit_factor x median`. The exact devices have an infinite limit.
pub fn device_limits_from(scores: &[f32], limit_factor: f32) -> Vec<(f32, QueueIndex)> {
    device_limits_pair(scores, limit_factor).to_vec()
}

/// Fixed-size form of [`device_limits_from`]: there are only ever two
/// limits (TPU's median-derived cap and the exact devices' infinity), so
/// the warm path needs no `Vec` at all. The median is selected without
/// sorting a scratch copy of the scores.
fn device_limits_pair(scores: &[f32], limit_factor: f32) -> [(f32, QueueIndex); 2] {
    let median = if scores.is_empty() {
        0.0
    } else {
        // The element a full sort would place at index len/2, found by
        // counting: `s` lands there iff fewer-than-or-`target` scores
        // order strictly below it and the ties reach past `target`.
        // Quadratic in the partition count, but partition counts are
        // tens, not millions, and it beats allocating and sorting a
        // scratch vector on every planning pass.
        let target = scores.len() / 2;
        let by = |a: f32, b: f32| a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);
        let mut med = scores[0];
        for &s in scores {
            let below = scores.iter().filter(|&&x| by(x, s).is_lt()).count();
            let equal = scores.iter().filter(|&&x| by(x, s).is_eq()).count();
            if below <= target && target < below + equal {
                med = s;
                break;
            }
        }
        med
    };
    [(median * limit_factor, TPU), (f32::INFINITY, GPU)]
}

/// Algorithm 2 (Top-K criticality): within each window of `w` partitions,
/// the `k` highest-criticality partitions go to the accurate queue (0) and
/// the rest to the approximate queue.
///
/// # Panics
///
/// Panics if `k > w` or `w == 0`.
pub fn algorithm2_top_k(scores: &[f32], k: usize, w: usize) -> Vec<QueueIndex> {
    let mut out = Vec::new();
    algorithm2_into(scores, k, w, &mut out);
    out
}

/// Out-param form of [`algorithm2_top_k`]: clears and refills `out` and
/// reuses one pooled rank-ordering scratch across windows. The per-window
/// sort is stable, matching the original, so ties keep their bit-exact
/// assignment.
fn algorithm2_into(scores: &[f32], k: usize, w: usize, out: &mut Vec<QueueIndex>) {
    assert!(w > 0, "window must be positive");
    assert!(k <= w, "K must not exceed the window size");
    out.clear();
    out.resize(scores.len(), TPU);
    let mut order = crate::arena::ORDER.take();
    for (w_idx, chunk) in scores.chunks(w).enumerate() {
        let base = w_idx * w;
        order.clear();
        order.extend(0..chunk.len());
        order.sort_by(|&a, &b| {
            chunk[b]
                .partial_cmp(&chunk[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (rank, &local) in order.iter().enumerate() {
            out[base + local] = if rank < k { GPU } else { TPU };
        }
    }
    crate::arena::ORDER.put(order);
}

/// Rank-based assignment for oracle/IRA: the top `critical_fraction` of
/// partitions by measured error go to the exact queue.
fn rank_assignment(errors: &[f32], critical_fraction: f64) -> Vec<QueueIndex> {
    let n = errors.len();
    let k = ((n as f64 * critical_fraction).round() as usize).min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        errors[b]
            .partial_cmp(&errors[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![TPU; n];
    for &i in order.iter().take(k) {
        out[i] = GPU;
    }
    out
}

/// Materializes queues from per-partition class decisions and attaches
/// criticality metadata to each HLOP.
///
/// The TPU's queue is ordered by *ascending* criticality: the device works
/// through the most benign partitions first, and since exact devices steal
/// from the **back** of a victim's queue, whatever they reclaim is exactly
/// the most critical TPU-eligible work — the quality-preserving direction
/// of §3.5's restricted stealing.
fn queues_from_classes(hlops: &[Hlop], scores: &[f32], classes: &[QueueIndex]) -> [Vec<Hlop>; 3] {
    let mut queues = pooled_queues();
    for ((h, &score), &class) in hlops.iter().zip(scores).zip(classes) {
        let mut h = *h;
        h.criticality = Some(score);
        if class == TPU {
            queues[TPU].push(h);
        } else {
            // All exact-class work starts in the GPU queue; the CPU (same
            // accuracy class) steals at its own pace, which shares the
            // critical work in proportion to actual device speed instead
            // of a blind round-robin that can strand a slow CPU with a
            // schedule-defining straggler.
            queues[GPU].push(h);
        }
    }
    let by_score_asc = |a: &Hlop, b: &Hlop| {
        a.criticality
            .partial_cmp(&b.criticality)
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    // Unstable sort: allocation-free, and ties are immaterial here (equal
    // criticality scores are interchangeable for steal ordering).
    queues[TPU].sort_unstable_by(by_score_asc);
    // Exact queues stay in arrival order: critical partitions land
    // anywhere in the schedule, including its tail, where they can only
    // run on exact hardware — the small utilization price quality
    // awareness pays relative to unrestricted work stealing (§5.2).
    queues
}

/// Measures each partition's true NPU-vs-exact error on a canary subregion
/// (`frac` of its rows, at least one). Returns per-partition mean absolute
/// errors and the total canary work in kernel work units (two runs each).
fn canary_errors(vop: &Vop, hlops: &[Hlop], frac: f64) -> (Vec<f32>, f64) {
    let kernel = vop.kernel();
    let inputs: Vec<&Tensor> = vop.inputs().iter().collect();
    let (rows, cols) = vop.partition_space();
    let shape = kernel.shape();
    let canaries: Vec<Tile> = hlops
        .iter()
        .map(|h| {
            let canary_rows = ((h.tile.rows as f64 * frac).ceil() as usize).clamp(1, h.tile.rows);
            // Keep block kernels in phase: canary height rounded up to the
            // block edge when possible.
            let align = shape.block_align.max(1);
            let canary_rows = (canary_rows.div_ceil(align) * align).min(h.tile.rows);
            Tile {
                index: h.tile.index,
                row0: h.tile.row0,
                col0: h.tile.col0,
                rows: canary_rows,
                cols: h.tile.cols,
            }
        })
        .collect();
    let work: f64 = canaries
        .iter()
        .map(|c| 2.0 * c.len() as f64 * kernel.work_per_element())
        .sum();

    let errors = match shape.aggregation {
        shmt_kernels::Aggregation::Tile => {
            // All canary tiles are disjoint: compute both paths across all
            // partitions in parallel, then diff per canary region.
            let threads = crate::exec::default_threads();
            let mut exact = shape.allocate_output(rows, cols);
            let exact_tasks: Vec<crate::exec::ComputeTask> = canaries
                .iter()
                .map(|&tile| crate::exec::ComputeTask { tile, npu: false })
                .collect();
            crate::exec::compute_tasks(kernel, &inputs, &exact_tasks, &mut exact, threads);
            let mut approx = shape.allocate_output(rows, cols);
            let npu_tasks: Vec<crate::exec::ComputeTask> = canaries
                .iter()
                .map(|&tile| crate::exec::ComputeTask { tile, npu: true })
                .collect();
            crate::exec::compute_tasks(kernel, &inputs, &npu_tasks, &mut approx, threads);
            canaries
                .iter()
                .map(|&tile| mean_abs_diff(&exact, &approx, tile, &shape))
                .collect()
        }
        shmt_kernels::Aggregation::Reduce { .. } => canaries
            .iter()
            .map(|&canary| {
                let mut exact = shape.allocate_output(rows, cols);
                let mut approx = shape.allocate_output(rows, cols);
                kernel.run_exact(&inputs, canary, &mut exact);
                kernel.run_npu(&inputs, canary, &mut approx);
                mean_abs_diff(&exact, &approx, canary, &shape)
            })
            .collect(),
    };
    (errors, work)
}

fn mean_abs_diff(a: &Tensor, b: &Tensor, tile: Tile, shape: &shmt_kernels::KernelShape) -> f32 {
    match shape.aggregation {
        shmt_kernels::Aggregation::Tile => {
            let mut acc = 0.0f64;
            for r in tile.row0..tile.row0 + tile.rows {
                let ra = &a.row(r)[tile.col0..tile.col0 + tile.cols];
                let rb = &b.row(r)[tile.col0..tile.col0 + tile.cols];
                for (x, y) in ra.iter().zip(rb) {
                    acc += (x - y).abs() as f64;
                }
            }
            (acc / tile.len() as f64) as f32
        }
        shmt_kernels::Aggregation::Reduce { .. } => {
            let acc: f64 = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y).abs() as f64)
                .sum();
            (acc / a.len() as f64) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_vop;
    use shmt_kernels::Benchmark;

    fn sobel_vop(n: usize) -> Vop {
        Vop::from_benchmark(Benchmark::Sobel, Benchmark::Sobel.generate_inputs(n, n, 3)).unwrap()
    }

    #[test]
    fn policy_names_match_paper_legends() {
        assert_eq!(Policy::WorkStealing.name(), "work-stealing");
        assert_eq!(
            Policy::Qaws {
                assignment: QawsAssignment::TopK,
                sampling: SamplingMethod::Striding
            }
            .name(),
            "QAWS-TS"
        );
        assert_eq!(
            Policy::Qaws {
                assignment: QawsAssignment::DeviceLimits,
                sampling: SamplingMethod::Reduction
            }
            .name(),
            "QAWS-LR"
        );
        let names: Vec<&str> = Policy::qaws_variants().iter().map(Policy::name).collect();
        assert_eq!(
            names,
            ["QAWS-TS", "QAWS-TU", "QAWS-TR", "QAWS-LS", "QAWS-LU", "QAWS-LR"]
        );
    }

    #[test]
    fn algorithm2_assigns_top_k_to_accurate_queue() {
        let scores = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0];
        let q = algorithm2_top_k(&scores, 2, 8);
        assert_eq!(q[1], GPU);
        assert_eq!(q[3], GPU);
        assert_eq!(q.iter().filter(|&&x| x == GPU).count(), 2);
    }

    #[test]
    fn algorithm2_windows_rank_independently() {
        let scores = [10.0, 1.0, 1.0, 1.0, /* window 2 */ 2.0, 3.0, 1.0, 1.0];
        let q = algorithm2_top_k(&scores, 1, 4);
        assert_eq!(q[0], GPU);
        assert_eq!(q[5], GPU);
        assert_eq!(q.iter().filter(|&&x| x == GPU).count(), 2);
    }

    #[test]
    fn algorithm2_handles_ragged_final_window() {
        let scores = [1.0, 2.0, 3.0, 4.0, 9.0];
        let q = algorithm2_top_k(&scores, 2, 4);
        assert_eq!(q.len(), 5);
        assert_eq!(q[4], GPU, "lone partition in final window ranks first");
    }

    #[test]
    #[should_panic(expected = "K must not exceed")]
    fn algorithm2_rejects_k_above_window() {
        algorithm2_top_k(&[1.0], 5, 4);
    }

    #[test]
    fn algorithm1_assigns_by_limits() {
        let scores = [0.5, 5.0, 1.9];
        let limits = vec![(2.0, TPU), (f32::INFINITY, GPU)];
        let q = algorithm1_device_limits(&scores, &limits);
        assert_eq!(q, vec![TPU, GPU, TPU]);
    }

    #[test]
    fn algorithm1_supports_multiple_device_limits() {
        // Algorithm 1 is written for M devices: e.g. an int8 TPU (tight
        // limit), a 16-bit DSP (wider limit), and an exact GPU. Partitions
        // fall to the least accurate device that tolerates them.
        let scores = [0.5, 3.0, 10.0, 0.9];
        let limits = vec![(1.0, 2), (5.0, 1), (f32::INFINITY, 0)];
        let q = algorithm1_device_limits(&scores, &limits);
        assert_eq!(q, vec![2, 1, 0, 2]);
    }

    #[test]
    fn device_limits_derive_from_median() {
        let limits = device_limits_from(&[1.0, 2.0, 3.0, 4.0, 100.0], 1.5);
        assert_eq!(limits[0], (4.5, TPU));
        assert!(limits[0].0 > 0.0);
        assert_eq!(limits[1].1, GPU);
    }

    #[test]
    fn even_distribution_uses_gpu_and_tpu_only() {
        let vop = sobel_vop(128);
        let hlops = partition_vop(&vop, 8).unwrap();
        let plan = plan(
            Policy::EvenDistribution,
            &vop,
            &hlops,
            &QualityConfig::default(),
            PlanContext::new(1.0e9),
        );
        assert!(plan.queues[CPU].is_empty());
        assert!(!plan.queues[GPU].is_empty());
        assert!(!plan.queues[TPU].is_empty());
        assert!(
            plan.pipelined,
            "double buffering is infrastructure, not policy"
        );
        assert_eq!(plan.steal, steal_none());
        assert_eq!(plan.total_hlops(), hlops.len());
    }

    #[test]
    fn work_stealing_splits_across_all_devices() {
        let vop = sobel_vop(128);
        let hlops = partition_vop(&vop, 9).unwrap();
        let plan = plan(
            Policy::WorkStealing,
            &vop,
            &hlops,
            &QualityConfig::default(),
            PlanContext::new(1.0e9),
        );
        assert!(plan.queues.iter().all(|q| !q.is_empty()));
        assert!(plan.steal[TPU][GPU], "unrestricted stealing");
        assert_eq!(plan.overhead_s, 0.0);
    }

    #[test]
    fn qaws_restricts_stealing_by_accuracy() {
        let vop = sobel_vop(256);
        let hlops = partition_vop(&vop, 16).unwrap();
        let p = plan(
            Policy::Qaws {
                assignment: QawsAssignment::TopK,
                sampling: SamplingMethod::Striding,
            },
            &vop,
            &hlops,
            &QualityConfig::default(),
            PlanContext::new(1.0e9),
        );
        assert!(p.steal[GPU][TPU], "GPU may steal approximate work");
        assert!(!p.steal[TPU][GPU], "TPU must not steal exact work");
        assert!(
            p.steal[GPU][CPU] && p.steal[CPU][GPU],
            "exact peers steal freely"
        );
        assert!(p.overhead_s > 0.0, "sampling costs time");
        // Every HLOP got a criticality annotation.
        for q in &p.queues {
            for h in q {
                assert!(h.criticality.is_some());
            }
        }
    }

    #[test]
    fn qaws_routes_critical_partitions_to_exact_devices() {
        let vop = sobel_vop(256);
        let hlops = partition_vop(&vop, 16).unwrap();
        let p = plan(
            Policy::Qaws {
                assignment: QawsAssignment::TopK,
                sampling: SamplingMethod::Striding,
            },
            &vop,
            &hlops,
            &QualityConfig {
                sampling_rate: 0.05,
                ..QualityConfig::default()
            },
            PlanContext::new(1.0e9),
        );
        let max_exact: f32 = p.queues[GPU]
            .iter()
            .chain(&p.queues[CPU])
            .filter_map(|h| h.criticality)
            .fold(0.0, f32::max);
        let min_exact: f32 = p.queues[GPU]
            .iter()
            .chain(&p.queues[CPU])
            .filter_map(|h| h.criticality)
            .fold(f32::INFINITY, f32::min);
        let max_tpu: f32 = p.queues[TPU]
            .iter()
            .filter_map(|h| h.criticality)
            .fold(0.0, f32::max);
        // Ranking is windowed, so strict global separation is not
        // guaranteed — but the exact queues must hold high-criticality work.
        assert!(max_exact >= max_tpu, "exact {max_exact} vs tpu {max_tpu}");
        assert!(min_exact > 0.0);
    }

    #[test]
    fn ira_charges_canary_overhead_and_oracle_does_not() {
        let vop = sobel_vop(128);
        let hlops = partition_vop(&vop, 8).unwrap();
        let ira = plan(
            Policy::IraSampling,
            &vop,
            &hlops,
            &QualityConfig::default(),
            PlanContext::new(1.0e9),
        );
        let oracle = plan(
            Policy::Oracle,
            &vop,
            &hlops,
            &QualityConfig::default(),
            PlanContext::new(1.0e9),
        );
        assert!(ira.overhead_s > 0.0);
        assert_eq!(oracle.overhead_s, 0.0);
        assert_eq!(ira.total_hlops(), hlops.len());
        assert_eq!(oracle.total_hlops(), hlops.len());
    }
}
