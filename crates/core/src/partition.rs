//! The VOP partitioner (paper §3.4): divides a VOP's data into
//! page-granular partitions, honoring each kernel's alignment rules.
//!
//! Tile-wise and element-wise VOPs are partitioned into square-ish matrix
//! tiles (the paper's default partitions are 1024x1024 tiles); spatial
//! locality matters because each Edge TPU HLOP quantizes over its own
//! partition's value range, so compact tiles isolate wide-distribution
//! regions. Row-wise kernels (FFT) get bands of full rows instead. Every
//! partition holds at least one 4 KB page of `f32` elements whenever the
//! dataset does ("larger than and ... multiples of the main memory page
//! size whenever possible").

use shmt_kernels::KernelShape;
use shmt_tensor::arena::VecPool;
use shmt_tensor::tile::{Tile, MIN_VECTOR_ELEMS};

use crate::error::{Result, ShmtError};
use crate::hlop::Hlop;
use crate::vop::Vop;

/// Pooled tile-list spines: partitioning runs once per request, so its
/// scratch recycles like everything else on the serve path.
static TILES: VecPool<Tile> = VecPool::new();

/// Pooled axis-cut spines for [`axis_cuts_into`].
static STARTS: VecPool<usize> = VecPool::new();

/// Pooled segment lists (start, length) for the grid/band builders.
static CUTS: VecPool<(usize, usize)> = VecPool::new();

/// Splits `vop` into roughly `want` page-granular HLOP partitions.
///
/// The returned vector's spine comes from the runtime arena; callers
/// that are done with it may hand it to [`crate::arena`]'s HLOP pool
/// (the runtime does) or just drop it.
///
/// # Errors
///
/// Returns [`ShmtError::InvalidConfig`] if `want` is zero.
pub fn partition_vop(vop: &Vop, want: usize) -> Result<Vec<Hlop>> {
    if want == 0 {
        return Err(ShmtError::InvalidConfig(
            "partition count must be positive".into(),
        ));
    }
    let (rows, cols) = vop.partition_space();
    let shape = vop.kernel().shape();
    let mut tiles = TILES.take();
    partition_tiles_into(rows, cols, want, &shape, &mut tiles);
    let mut hlops = crate::arena::HLOPS.take();
    hlops.extend(tiles.iter().map(|t| Hlop::new(t.index, vop.opcode(), *t)));
    TILES.put(tiles);
    Ok(hlops)
}

/// Computes the tile partitioning of a `rows x cols` space under a
/// kernel's constraints.
pub fn partition_tiles(rows: usize, cols: usize, want: usize, shape: &KernelShape) -> Vec<Tile> {
    let mut tiles = Vec::new();
    partition_tiles_into(rows, cols, want, shape, &mut tiles);
    tiles
}

/// [`partition_tiles`] into a caller-supplied (typically pooled) vector,
/// which is cleared first.
pub fn partition_tiles_into(
    rows: usize,
    cols: usize,
    want: usize,
    shape: &KernelShape,
    tiles: &mut Vec<Tile>,
) {
    assert!(
        rows > 0 && cols > 0 && want > 0,
        "degenerate partition request"
    );
    tiles.clear();
    if shape.full_rows {
        band_tiles(rows, cols, want, shape, tiles);
    } else {
        grid_tiles(rows, cols, want, shape, tiles);
    }
}

/// Splits `total` into at most `parts` near-equal segments whose starts
/// are multiples of `align`, appended to `segs` (cleared first). Unlike
/// naive fixed-size tiling, near-equal cuts never leave a sub-page
/// remainder segment at the edge.
fn axis_cuts_into(total: usize, parts: usize, align: usize, segs: &mut Vec<(usize, usize)>) {
    segs.clear();
    let align = align.max(1);
    let parts = parts.clamp(1, total.div_ceil(align));
    let mut starts = STARTS.take();
    starts.extend((0..parts).map(|i| (i * total / parts) / align * align));
    starts.dedup();
    for (i, &start) in starts.iter().enumerate() {
        let end = if i + 1 < starts.len() {
            starts[i + 1]
        } else {
            total
        };
        if end > start {
            segs.push((start, end - start));
        }
    }
    STARTS.put(starts);
}

/// Square-ish matrix tiles: a near-equal grid of roughly `want` tiles,
/// grown until each holds at least one page when the dataset does.
fn grid_tiles(rows: usize, cols: usize, want: usize, shape: &KernelShape, tiles: &mut Vec<Tile>) {
    let align = shape.block_align.max(1);
    let target = ((rows * cols) as f64 / want as f64).sqrt().max(1.0);
    let mut n_r = ((rows as f64 / target).round() as usize).clamp(1, rows);
    let mut n_c = ((cols as f64 / target).round() as usize).clamp(1, cols);
    // Page rule (§3.4): shrink the grid until the *smallest* tile is at
    // least one page, conservatively accounting for alignment rounding.
    let min_tile = |n_r: usize, n_c: usize| {
        (rows / n_r).saturating_sub(align - 1).max(1)
            * (cols / n_c).saturating_sub(align - 1).max(1)
    };
    while n_r * n_c > 1 && min_tile(n_r, n_c) < MIN_VECTOR_ELEMS {
        if n_r >= n_c && n_r > 1 {
            n_r -= 1;
        } else if n_c > 1 {
            n_c -= 1;
        } else {
            n_r -= 1;
        }
    }
    let mut row_cuts = CUTS.take();
    let mut col_cuts = CUTS.take();
    axis_cuts_into(rows, n_r, align, &mut row_cuts);
    axis_cuts_into(cols, n_c, align, &mut col_cuts);
    let mut index = 0;
    for &(row0, h) in row_cuts.iter() {
        for &(col0, w) in col_cuts.iter() {
            tiles.push(Tile {
                index,
                row0,
                col0,
                rows: h,
                cols: w,
            });
            index += 1;
        }
    }
    CUTS.put(row_cuts);
    CUTS.put(col_cuts);
}

/// Bands of full rows for row-wise kernels, band starts aligned to the
/// block edge, each band page-sized when the dataset allows.
fn band_tiles(rows: usize, cols: usize, want: usize, shape: &KernelShape, tiles: &mut Vec<Tile>) {
    let align = shape.block_align.max(1);
    let min_rows_for_page = MIN_VECTOR_ELEMS.div_ceil(cols);
    let n = want.min((rows / min_rows_for_page.max(1)).max(1));
    let mut cuts = CUTS.take();
    axis_cuts_into(rows, n, align, &mut cuts);
    tiles.extend(cuts.iter().enumerate().map(|(index, &(row0, h))| Tile {
        index,
        row0,
        col0: 0,
        rows: h,
        cols,
    }));
    CUTS.put(cuts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vop::Vop;
    use shmt_kernels::Benchmark;

    fn shape_for(b: Benchmark) -> KernelShape {
        b.kernel().shape()
    }

    #[test]
    fn grid_covers_space_without_overlap() {
        let tiles = partition_tiles(1000, 512, 7, &shape_for(Benchmark::Sobel));
        let total: usize = tiles.iter().map(Tile::len).sum();
        assert_eq!(total, 1000 * 512);
        let mut covered = vec![false; 0];
        covered.resize(1000 * 512, false);
        for t in &tiles {
            for r in t.row0..t.row0 + t.rows {
                for c in t.col0..t.col0 + t.cols {
                    assert!(!covered[r * 512 + c]);
                    covered[r * 512 + c] = true;
                }
            }
        }
    }

    #[test]
    fn grid_tiles_are_squareish_and_local() {
        let tiles = partition_tiles(1024, 1024, 16, &shape_for(Benchmark::Sobel));
        // Interior tiles should be near 256x256.
        let t = &tiles[0];
        assert!(t.rows >= 128 && t.rows <= 512, "tile rows {}", t.rows);
        assert!(t.cols >= 128 && t.cols <= 512, "tile cols {}", t.cols);
        assert!(t.cols < 1024, "tiles must not span the full width");
    }

    #[test]
    fn tiles_meet_page_rule_when_dataset_allows() {
        let tiles = partition_tiles(512, 512, 64, &shape_for(Benchmark::Sobel));
        for t in &tiles {
            assert!(t.len() >= MIN_VECTOR_ELEMS, "tile of {} elems", t.len());
        }
    }

    #[test]
    fn blocked_kernels_get_aligned_tiles() {
        let tiles = partition_tiles(256, 256, 5, &shape_for(Benchmark::Dct8x8));
        for t in &tiles {
            assert_eq!(t.row0 % 8, 0, "tile start must align to the DCT block");
            assert_eq!(t.col0 % 8, 0);
        }
        let dwt = partition_tiles(256, 256, 5, &shape_for(Benchmark::Dwt));
        for t in &dwt {
            assert_eq!(t.row0 % 32, 0);
            assert_eq!(t.col0 % 32, 0);
        }
    }

    #[test]
    fn fft_gets_full_row_bands() {
        let tiles = partition_tiles(256, 128, 8, &shape_for(Benchmark::Fft));
        for t in &tiles {
            assert_eq!(t.col0, 0);
            assert_eq!(t.cols, 128);
        }
        let total: usize = tiles.iter().map(Tile::len).sum();
        assert_eq!(total, 256 * 128);
    }

    #[test]
    fn tiny_dataset_is_single_partition() {
        let tiles = partition_tiles(8, 8, 16, &shape_for(Benchmark::Sobel));
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].len(), 64);
    }

    #[test]
    fn partition_vop_validates_and_uses_kernel_shape() {
        let vop =
            Vop::from_benchmark(Benchmark::Fft, Benchmark::Fft.generate_inputs(64, 64, 1)).unwrap();
        let hlops = partition_vop(&vop, 4).unwrap();
        for h in &hlops {
            assert_eq!(h.tile.cols, 64, "FFT partitions must span full rows");
        }
        assert!(partition_vop(&vop, 0).is_err());
    }

    #[test]
    fn indices_are_sequential() {
        let tiles = partition_tiles(300, 300, 6, &shape_for(Benchmark::MeanFilter));
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.index, i);
        }
    }

    #[test]
    fn partition_count_is_near_request() {
        let tiles = partition_tiles(2048, 2048, 64, &shape_for(Benchmark::Laplacian));
        assert!(
            tiles.len() >= 32 && tiles.len() <= 128,
            "{} tiles",
            tiles.len()
        );
    }
}
