//! Runtime-side buffer arenas (ROADMAP item 3).
//!
//! The data-plane page pool lives in [`shmt_tensor::arena`] (re-exported
//! here); this module adds the *control-plane* pools — the per-run
//! bookkeeping vectors the runtime fills and the report hands back —
//! plus [`recycle_report`], which returns a consumed [`RunReport`]'s
//! spines (and its output tensor's page) to those pools so a warm serve
//! loop performs no heap allocation per request.
//!
//! Recycling is an optimization, not an obligation: a report that is
//! simply dropped frees its memory normally (the output tensor's page
//! still recycles through the tensor arena's `Drop` integration).

pub use shmt_tensor::arena::{clear, put_f32, stats, take_f32, ArenaStats, ObjPool, VecPool};

use hetsim::QueuePair;
use shmt_tensor::Tensor;

use crate::exec::ComputeTask;
use crate::guard::RepairRecord;
use crate::hlop::{Hlop, HlopRecord};
use crate::report::{DeviceStats, RunReport};

/// Per-run HLOP completion-record spines ([`RunReport::records`]).
pub(crate) static RECORDS: VecPool<HlopRecord> = VecPool::new();

/// Per-run device-stats spines ([`RunReport::devices`]).
pub(crate) static DEVICES: VecPool<DeviceStats> = VecPool::new();

/// HLOP list spines: the partitioner's output and the plan's per-device
/// queues share one pool (they hold the same element type and sizes).
pub(crate) static HLOPS: VecPool<Hlop> = VecPool::new();

/// Per-run compute-task spines.
pub(crate) static COMPUTE: VecPool<ComputeTask> = VecPool::new();

/// Per-run stolen-id flag spines.
pub(crate) static STOLEN: VecPool<bool> = VecPool::new();

/// Guard repair-record spines.
pub(crate) static REPAIRS: VecPool<RepairRecord> = VecPool::new();

/// Whole device queue-pair triples, deque capacity preserved across
/// runs ([`hetsim::QueuePair::reset`] clears state, not storage).
pub(crate) static QUEUE_PAIRS: ObjPool<[QueuePair<Hlop>; 3]> = ObjPool::new();

/// Output-slot arrays for the parallel executor's per-slot result
/// collection.
pub(crate) static SLOTS: VecPool<Option<Tensor>> = VecPool::new();

/// QAWS sampling scratch: one reused value buffer per planning pass.
pub(crate) static SAMPLES: VecPool<f32> = VecPool::new();

/// QAWS per-partition criticality-score spines.
pub(crate) static SCORES: VecPool<f32> = VecPool::new();

/// QAWS per-partition queue-class spines.
pub(crate) static CLASSES: VecPool<usize> = VecPool::new();

/// Rank-ordering scratch for the windowed Top-K assignment.
pub(crate) static ORDER: VecPool<usize> = VecPool::new();

/// Localized input scratch spines for the parallel executor.
pub(crate) static LOCALS: VecPool<Tensor> = VecPool::new();

/// Returns a consumed report's heap spines to the runtime pools: the
/// record and device vectors, any guard repair records, and (via the
/// tensor arena) the output tensor's backing page. Call this from a
/// serve loop once a response's output has been consumed; the next
/// request's run then takes the same spines back instead of allocating.
pub fn recycle_report(report: RunReport) {
    let RunReport {
        output,
        devices,
        records,
        quality,
        ..
    } = report;
    drop(output); // page recycles through the tensor arena
    DEVICES.put(devices);
    RECORDS.put(records);
    REPAIRS.put(quality.repairs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Platform, Policy, RuntimeConfig, ShmtRuntime, Vop};
    use shmt_kernels::Benchmark;

    #[test]
    fn recycle_report_round_trips_spines() {
        let b = Benchmark::Sobel;
        let vop = Vop::from_benchmark(b, b.generate_inputs(64, 64, 7)).unwrap();
        let rt = ShmtRuntime::new(
            Platform::jetson(b),
            RuntimeConfig::new(Policy::WorkStealing),
        );
        let report = rt.execute(&vop).unwrap();
        let n_records = report.records.len();
        assert!(n_records > 0);
        recycle_report(report);
        let recs = RECORDS.take();
        assert!(recs.is_empty());
        assert!(recs.capacity() >= n_records);
        RECORDS.put(recs);
    }
}
