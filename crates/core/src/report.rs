//! Execution reports: what one VOP run (or baseline run) produced and cost.

use hetsim::{DeviceKind, EnergyBreakdown, FaultReport};
use shmt_tensor::Tensor;
use shmt_trace::TraceData;

use crate::guard::QualityReport;
use crate::hlop::HlopRecord;

/// Per-device accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceStats {
    /// Which device.
    pub kind: DeviceKind,
    /// Seconds the device spent computing.
    pub busy_s: f64,
    /// Seconds the device spent waiting for data transfers.
    pub wait_s: f64,
    /// HLOPs completed.
    pub hlops: usize,
    /// Deepest this device's incoming queue ever got (§3.4's imbalance
    /// signal).
    pub max_queue_depth: usize,
    /// HLOPs withdrawn from this device's queue by other devices' steals.
    pub stolen_away: usize,
}

/// The result of executing one VOP through the SHMT runtime.
#[derive(Debug)]
pub struct RunReport {
    /// The computed output (genuinely computed: exact on GPU/CPU
    /// partitions, int8-degraded on Edge TPU partitions).
    pub output: Tensor,
    /// The true `(rows, cols)` of the computed output. Pipeline layers
    /// move `output` out and leave a 1×1 placeholder behind (the PR-4
    /// clone-avoidance), so observers must read the real size from here,
    /// never from `output.shape()`.
    pub output_shape: (usize, usize),
    /// End-to-end virtual latency, including scheduling overhead.
    pub makespan_s: f64,
    /// Serial scheduler overhead included in the makespan (sampling or
    /// canary computation).
    pub scheduling_overhead_s: f64,
    /// Per-device accounting.
    pub devices: Vec<DeviceStats>,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Bytes moved over the interconnect.
    pub bus_bytes: u64,
    /// Completion records per HLOP.
    pub records: Vec<HlopRecord>,
    /// Fraction of elements computed on the Edge TPU.
    pub tpu_fraction: f64,
    /// Number of HLOPs that moved queues through stealing.
    pub steals: usize,
    /// Modeled peak memory footprint (bytes).
    pub peak_memory_bytes: u64,
    /// What the fault injector did during the run; all-zero (and
    /// `degraded: false`) for a run without a fault plan.
    pub faults: FaultReport,
    /// What the quality guard observed and repaired; all-zero (with
    /// `enabled: false`) for a run without the guard.
    pub quality: QualityReport,
    /// The structured event trace, when the run was captured through
    /// [`crate::runtime::ShmtRuntime::execute_traced`]; `None` otherwise.
    pub trace: Option<TraceData>,
}

impl RunReport {
    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy.total_j() * self.makespan_s
    }

    /// Total device busy time.
    pub fn total_busy_s(&self) -> f64 {
        self.devices.iter().map(|d| d.busy_s).sum()
    }

    /// Communication overhead: time spent waiting on data exchange as a
    /// fraction of total device busy time (the paper's Table 3 metric).
    pub fn comm_overhead(&self) -> f64 {
        let busy = self.total_busy_s();
        if busy <= 0.0 {
            0.0
        } else {
            self.devices.iter().map(|d| d.wait_s).sum::<f64>() / busy
        }
    }

    /// Accounting for the device that ran the given kind, if any.
    pub fn device(&self, kind: DeviceKind) -> Option<&DeviceStats> {
        self.devices.iter().find(|d| d.kind == kind)
    }

    /// Total elements computed per device, in report order — the span
    /// workload an observer needs to turn busy time into throughput.
    pub fn device_elements(&self) -> Vec<(DeviceKind, u64)> {
        self.devices
            .iter()
            .map(|d| {
                let elems = self
                    .records
                    .iter()
                    .filter(|r| r.device == d.kind)
                    .map(|r| r.elements as u64)
                    .sum();
                (d.kind, elems)
            })
            .collect()
    }

    /// Fraction of HLOPs executed per device, in report order.
    pub fn device_shares(&self) -> Vec<(DeviceKind, f64)> {
        let total = self.records.len().max(1) as f64;
        self.devices
            .iter()
            .map(|d| (d.kind, d.hlops as f64 / total))
            .collect()
    }

    /// Renders a textual Gantt chart of the schedule, one row per device,
    /// `width` characters across the makespan. Busy intervals are drawn
    /// with `#`, idle with `.` — handy for eyeballing balance and tails.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn gantt(&self, width: usize) -> Vec<String> {
        assert!(width > 0, "gantt width must be positive");
        let span = self.makespan_s.max(1e-12);
        self.devices
            .iter()
            .map(|d| {
                let mut cells = vec![b'.'; width];
                for r in self.records.iter().filter(|r| r.device == d.kind) {
                    let a = ((r.start_s / span) * width as f64) as usize;
                    let b = ((r.end_s / span) * width as f64).ceil() as usize;
                    for cell in &mut cells[a.min(width - 1)..b.min(width)] {
                        *cell = b'#';
                    }
                }
                format!(
                    "{:<8} |{}| {:>4} HLOPs",
                    d.kind.to_string(),
                    // Cells are only ever b'.' or b'#'; lossy conversion
                    // keeps this infallible without an unwrap.
                    String::from_utf8_lossy(&cells),
                    d.hlops
                )
            })
            .collect()
    }

    /// Serializes the HLOP completion records as CSV
    /// (`id,device,start_s,end_s,stolen`) for external plotting.
    pub fn records_csv(&self) -> String {
        let mut out = String::from("id,device,start_s,end_s,stolen\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{:.9},{:.9},{}\n",
                r.id, r.device, r.start_s, r.end_s, r.stolen
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hlop::HlopRecord;
    use hetsim::EnergyBreakdown;
    use shmt_tensor::Tensor;

    fn sample_report() -> RunReport {
        RunReport {
            output: Tensor::zeros(2, 2),
            output_shape: (2, 2),
            makespan_s: 1.0,
            scheduling_overhead_s: 0.0,
            devices: vec![
                DeviceStats {
                    kind: DeviceKind::Gpu,
                    busy_s: 0.6,
                    wait_s: 0.0,
                    hlops: 2,
                    max_queue_depth: 2,
                    stolen_away: 0,
                },
                DeviceStats {
                    kind: DeviceKind::EdgeTpu,
                    busy_s: 0.3,
                    wait_s: 0.01,
                    hlops: 1,
                    max_queue_depth: 1,
                    stolen_away: 1,
                },
            ],
            energy: EnergyBreakdown {
                idle_j: 3.0,
                active_j: 1.0,
            },
            bus_bytes: 100,
            records: vec![
                HlopRecord {
                    id: 0,
                    device: DeviceKind::Gpu,
                    start_s: 0.0,
                    end_s: 0.4,
                    stolen: false,
                    elements: 16,
                },
                HlopRecord {
                    id: 1,
                    device: DeviceKind::Gpu,
                    start_s: 0.4,
                    end_s: 0.6,
                    stolen: false,
                    elements: 16,
                },
                HlopRecord {
                    id: 2,
                    device: DeviceKind::EdgeTpu,
                    start_s: 0.0,
                    end_s: 0.3,
                    stolen: true,
                    elements: 8,
                },
            ],
            tpu_fraction: 0.33,
            steals: 1,
            peak_memory_bytes: 1024,
            faults: FaultReport::default(),
            quality: QualityReport::disabled(),
            trace: None,
        }
    }

    #[test]
    fn edp_and_comm_overhead() {
        let r = sample_report();
        assert_eq!(r.edp(), 4.0);
        assert!((r.comm_overhead() - 0.01 / 0.9).abs() < 1e-9);
        assert_eq!(r.device(DeviceKind::Gpu).unwrap().hlops, 2);
        assert!(r.device(DeviceKind::Cpu).is_none());
    }

    #[test]
    fn device_elements_sum_per_device() {
        let r = sample_report();
        assert_eq!(
            r.device_elements(),
            vec![(DeviceKind::Gpu, 32), (DeviceKind::EdgeTpu, 8)]
        );
    }

    #[test]
    fn device_shares_sum_to_one() {
        let r = sample_report();
        let total: f64 = r.device_shares().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gantt_draws_busy_cells() {
        let r = sample_report();
        let rows = r.gantt(10);
        assert_eq!(rows.len(), 2);
        // GPU busy for the first 60%: cells 0..6 filled.
        assert!(rows[0].contains("######"));
        assert!(rows[0].ends_with("2 HLOPs"));
        // TPU busy 30% then idle.
        assert!(rows[1].contains("###"));
        assert!(rows[1].contains('.'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = sample_report();
        let csv = r.records_csv();
        assert!(csv.starts_with("id,device,start_s"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("2,EdgeTPU,"));
    }
}

/// The result of a single-device reference run (GPU baseline, software
/// pipelining, or TPU-only).
#[derive(Debug)]
pub struct BaselineReport {
    /// The computed output.
    pub output: Tensor,
    /// End-to-end virtual latency.
    pub makespan_s: f64,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Modeled peak memory footprint (bytes).
    pub peak_memory_bytes: u64,
}

impl BaselineReport {
    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy.total_j() * self.makespan_s
    }
}
