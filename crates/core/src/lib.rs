//! # SHMT — Simultaneous and Heterogeneous Multithreading
//!
//! A reproduction of the runtime from *"Simultaneous and Heterogenous
//! Multithreading"* (Hsu & Tseng, MICRO '23): a programming and execution
//! model that co-executes a **single compute kernel** across heterogeneous
//! processing units — CPU, GPU, and an int8 Edge TPU — at the same time,
//! with quality control over the precision mismatch.
//!
//! The moving parts, mirroring the paper's §3:
//!
//! * [`vop`] — virtual operations (VOPs), the hardware-independent command
//!   set of the SHMT virtual device (Table 1).
//! * [`hlop`] — high-level operations (HLOPs), the device-sized partitions
//!   of a VOP that form the unit of scheduling.
//! * [`partition`] — the page-granularity partitioner (§3.4).
//! * [`sampling`] / [`criticality`] — Algorithms 3–5 and the range+stddev
//!   criticality metric (§3.5).
//! * [`sched`] — even distribution, work stealing, the six QAWS variants
//!   (Algorithms 1–2 × 3 sampling methods), IRA, and the oracle.
//! * [`runtime`] — the virtual-device driver that plays a schedule out on
//!   the modeled platform in virtual time while *really computing* every
//!   partition (exact fp32 on CPU/GPU, int8 NPU path on the Edge TPU).
//! * [`platform`] / [`calibration`] — the modeled Jetson-Nano-class
//!   hardware, with per-benchmark device ratios taken from the paper's
//!   Fig 2.
//! * [`baseline`] — the GPU baseline and software-pipelining references.
//! * [`exec`] — host-side parallel execution of the HLOP computations.
//! * [`arena`] — pooled tensor pages and per-run bookkeeping spines, so
//!   warm repeated executions allocate nothing.
//! * [`quality`] — MAPE and SSIM.
//! * [`experiments`] — drivers that regenerate every figure and table of
//!   the paper's evaluation.
//! * fault tolerance — [`runtime::ShmtRuntime::execute_with_faults`]
//!   runs a VOP under a seeded, deterministic [`FaultPlan`] (slowdown
//!   windows, transient transfer failures retried with capped backoff,
//!   device dropout with accuracy-ordered re-dispatch, TPU output
//!   miscalibration); the report's [`FaultReport`] says what fired.
//! * [`guard`] — output-side quality control (§3.6): a configurable
//!   [`GuardConfig`] samples pages of every approximate partition after
//!   aggregation, recomputes them exactly in virtual time, and re-executes
//!   partitions whose estimated error exceeds the [`QualityBudget`]; the
//!   report's [`QualityReport`] says what was checked and repaired.
//! * [`trace`] (re-exported `shmt-trace`) — structured event tracing:
//!   [`runtime::ShmtRuntime::execute_traced`] captures every dispatch,
//!   cast, transfer, compute span, steal, and aggregation in virtual time,
//!   exportable as Chrome trace-event JSON for Perfetto.
//!
//! # Quickstart
//!
//! ```
//! use shmt::{Platform, Policy, RuntimeConfig, ShmtRuntime, Vop};
//! use shmt_kernels::Benchmark;
//!
//! # fn main() -> Result<(), shmt::ShmtError> {
//! let benchmark = Benchmark::Sobel;
//! let inputs = benchmark.generate_inputs(256, 256, 42);
//! let vop = Vop::from_benchmark(benchmark, inputs)?;
//!
//! let runtime = ShmtRuntime::new(
//!     Platform::jetson(benchmark),
//!     RuntimeConfig::new(Policy::WorkStealing),
//! );
//! let report = runtime.execute(&vop)?;
//! println!("makespan: {:.3} ms", report.makespan_s * 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod baseline;
pub mod calibration;
pub mod criticality;
pub mod dag;
mod error;
pub mod exec;
pub mod experiments;
pub mod guard;
pub mod hlop;
pub mod partition;
pub mod pipeline;
pub mod platform;
pub mod pool;
pub mod quality;
pub mod report;
pub mod runtime;
pub mod sampling;
pub mod sched;
pub mod vop;

pub use calibration::{AdaptiveCalibration, AdaptiveConfig};
pub use dag::{DagConfig, DagNode, DagReport, DagStageReport, NodeId, NodeOp, VopDag};
pub use error::{Result, ShmtError};
pub use guard::{GuardConfig, QualityBudget, QualityReport, RepairRecord};
pub use hetsim::{FaultInjector, FaultPlan, FaultReport, TpuMiscalibration};
pub use platform::Platform;
pub use report::{BaselineReport, RunReport};
pub use runtime::{RuntimeConfig, ShmtRuntime};
pub use sched::{Policy, QawsAssignment, QualityConfig};
pub use shmt_tensor::Tensor;
pub use shmt_trace as trace;
pub use shmt_trace::{NullSink, RingBufferSink, TraceData, TraceRecorder, TraceSink};
pub use vop::{Opcode, ParallelModel, Vop};
