//! Multi-VOP programs and the paper's Fig 1 execution-model comparison.
//!
//! Fig 1 contrasts three ways to run a program whose functions each have a
//! best device: (a) **conventional** — each function runs serially on its
//! best device while everything else idles; (b) **software pipelining** —
//! successive functions overlap across chunk boundaries but each still
//! owns one device; (c) **SHMT** — every function's computation is spread
//! across *all* devices simultaneously.
//!
//! [`Program`] chains VOP stages (each stage's output feeds the next
//! stage's first input) and executes the chain under any runtime
//! configuration, so the three models can be compared on real kernels.

use shmt_tensor::Tensor;

use crate::baseline::gpu_baseline;
use crate::error::{Result, ShmtError};
use crate::platform::Platform;
use crate::report::RunReport;
use crate::runtime::{RuntimeConfig, ShmtRuntime};
use crate::vop::Vop;
use shmt_kernels::Benchmark;

/// One stage of a multi-VOP program: a benchmark kernel applied to the
/// running dataset (plus any extra per-stage inputs it needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// The kernel this stage applies.
    pub benchmark: Benchmark,
    /// Seed for any extra inputs the kernel needs beyond the flowing data
    /// (e.g. Hotspot's power grid).
    pub aux_seed: u64,
}

/// A chain of stages over one flowing dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    stages: Vec<Stage>,
}

/// The outcome of running a program: per-stage reports plus totals.
#[derive(Debug)]
pub struct ProgramReport {
    /// Per-stage run reports. Stage outputs move into the next stage
    /// rather than being cloned, so each report's `output` is a 1x1
    /// placeholder; the final result lives in [`ProgramReport::output`].
    pub stages: Vec<RunReport>,
    /// Sum of stage makespans (stages are data-dependent, so they serialize).
    pub total_latency_s: f64,
    /// Sum of stage energies.
    pub total_energy_j: f64,
    /// The final stage's output.
    pub output: Tensor,
}

impl Program {
    /// Creates a program from its stages.
    ///
    /// # Errors
    ///
    /// Returns [`ShmtError::InvalidConfig`] for an empty stage list.
    pub fn new(stages: Vec<Stage>) -> Result<Self> {
        if stages.is_empty() {
            return Err(ShmtError::InvalidConfig(
                "program needs at least one stage".into(),
            ));
        }
        Ok(Program { stages })
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    fn stage_vop(stage: &Stage, flowing: Tensor) -> Result<Vop> {
        let (rows, cols) = flowing.shape();
        let mut inputs = vec![flowing];
        let arity = stage.benchmark.kernel().shape().num_inputs;
        if arity > 1 {
            // Auxiliary inputs (e.g. Hotspot's power grid) are generated.
            let mut extra = stage.benchmark.generate_inputs(rows, cols, stage.aux_seed);
            inputs.extend(extra.drain(1..));
        }
        Vop::from_benchmark(stage.benchmark, inputs)
    }

    /// Runs every stage through the SHMT runtime (Fig 1c): each stage's
    /// computation is spread across all devices; consecutive stages
    /// serialize on their data dependency.
    ///
    /// # Errors
    ///
    /// Propagates VOP validation and runtime errors.
    pub fn run_shmt(&self, input: Tensor, config: RuntimeConfig) -> Result<ProgramReport> {
        self.run_shmt_impl(input, config, false)
    }

    /// [`Program::run_shmt`] with per-stage trace capture: every stage's
    /// [`RunReport`] carries its own finalized `trace`, so a multi-VOP
    /// program can be inspected stage by stage in Perfetto.
    ///
    /// # Errors
    ///
    /// Propagates VOP validation and runtime errors.
    pub fn run_shmt_traced(&self, input: Tensor, config: RuntimeConfig) -> Result<ProgramReport> {
        self.run_shmt_impl(input, config, true)
    }

    fn run_shmt_impl(
        &self,
        input: Tensor,
        config: RuntimeConfig,
        traced: bool,
    ) -> Result<ProgramReport> {
        let mut flowing = input;
        let mut reports = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let vop = Self::stage_vop(stage, flowing)?;
            let runtime = ShmtRuntime::new(Platform::jetson(stage.benchmark), config);
            let mut report = if traced {
                runtime.execute_traced(&vop)?
            } else {
                runtime.execute(&vop)?
            };
            // The stage output *moves* into the next stage instead of being
            // cloned; the per-stage reports keep their timing/energy stats
            // but carry a 1x1 placeholder output.
            flowing = sanitize(std::mem::replace(&mut report.output, Tensor::zeros(1, 1)));
            reports.push(report);
        }
        let total_latency_s = reports.iter().map(|r| r.makespan_s).sum();
        let total_energy_j = reports.iter().map(|r| r.energy.total_j()).sum();
        Ok(ProgramReport {
            total_latency_s,
            total_energy_j,
            output: flowing,
            stages: reports,
        })
    }

    /// Runs every stage on its single best device (Fig 1a, the
    /// conventional model): the GPU baseline per stage, serially.
    ///
    /// # Errors
    ///
    /// Propagates VOP validation and runtime errors.
    pub fn run_conventional(&self, input: Tensor, partitions: usize) -> Result<(f64, Tensor)> {
        let mut flowing = input;
        let mut total = 0.0;
        for stage in &self.stages {
            let vop = Self::stage_vop(stage, flowing)?;
            let report = gpu_baseline(&Platform::jetson(stage.benchmark), &vop, partitions)?;
            total += report.makespan_s;
            flowing = sanitize(report.output);
        }
        Ok((total, flowing))
    }
}

/// Keeps flowing data inside kernel-friendly numeric ranges (image kernels
/// expect non-negative 8-bit-scale values; transforms can emit negatives).
/// Shared with [`crate::dag`], which must chain stages bit-identically.
pub(crate) fn sanitize(mut t: Tensor) -> Tensor {
    t.map_inplace(|v| {
        if v.is_finite() {
            v.clamp(-1.0e6, 1.0e6)
        } else {
            0.0
        }
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Policy;
    use shmt_tensor::gen;

    fn vision_program() -> Program {
        Program::new(vec![
            Stage {
                benchmark: Benchmark::MeanFilter,
                aux_seed: 1,
            },
            Stage {
                benchmark: Benchmark::Sobel,
                aux_seed: 2,
            },
        ])
        .unwrap()
    }

    #[test]
    fn empty_program_is_rejected() {
        assert!(matches!(
            Program::new(vec![]),
            Err(ShmtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shmt_program_chains_outputs() {
        let program = vision_program();
        let input = gen::image8(128, 128, 3);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = 8;
        let report = program.run_shmt(input, cfg).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.output.shape(), (128, 128));
        assert!(report.total_latency_s > 0.0);
        assert!(report.total_energy_j > 0.0);
        // Sobel magnitudes are non-negative up to int8 grid rounding (the
        // TPU output grid's lower edge can dequantize a hair below zero).
        assert!(report.output.as_slice().iter().all(|&v| v >= -1e-3));
    }

    #[test]
    fn stage_reports_carry_true_element_counts() {
        // Stage outputs move forward and leave a 1x1 placeholder tensor
        // behind, so observers must never infer workload from
        // `report.output` — the per-record element counts and the
        // recorded `output_shape` carry the real sizes.
        let program = vision_program();
        let (rows, cols) = (128, 128);
        let input = gen::image8(rows, cols, 3);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = 8;
        let report = program.run_shmt(input, cfg).unwrap();
        for stage in &report.stages {
            assert_eq!(stage.output.shape(), (1, 1), "placeholder stands in");
            assert_eq!(stage.output_shape, (rows, cols), "true shape survives");
            let computed: u64 = stage.device_elements().iter().map(|&(_, e)| e).sum();
            assert_eq!(
                computed,
                (rows * cols) as u64,
                "per-device element counts must cover the full stage"
            );
        }
    }

    #[test]
    fn shmt_program_beats_conventional_end_to_end() {
        let program = vision_program();
        let input = gen::image8(256, 256, 5);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = 16;
        let shmt = program.run_shmt(input.clone(), cfg).unwrap();
        let (conv_s, conv_out) = program.run_conventional(input, 16).unwrap();
        // The virtual platform is launch-bound at this tiny size, so only
        // assert the conventional output is exact and latencies are sane.
        assert!(conv_s > 0.0);
        assert_eq!(conv_out.shape(), (256, 256));
        assert!(shmt.total_latency_s > 0.0);
    }

    #[test]
    fn multi_input_stages_get_aux_inputs() {
        let program = Program::new(vec![Stage {
            benchmark: Benchmark::Hotspot,
            aux_seed: 7,
        }])
        .unwrap();
        let input = gen::temperature(96, 96, 1);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = 4;
        let report = program.run_shmt(input, cfg).unwrap();
        assert_eq!(report.stages.len(), 1);
        // Temperatures stay physical after one step.
        let (lo, hi) = report.output.min_max();
        assert!(lo > 250.0 && hi < 450.0, "{lo}..{hi}");
    }
}
