//! Reference executions: the optimized GPU baseline every figure
//! normalizes against, and the software-pipelining variant of Fig 6.

use hetsim::{DeviceTimeline, EnergyMeter, MemoryTracker, SimTime};
use shmt_tensor::Tensor;

use crate::error::Result;
use crate::hlop::Hlop;
use crate::partition::partition_vop;
use crate::platform::Platform;
use crate::report::BaselineReport;
use crate::sched::{CPU, GPU};
use crate::vop::Vop;

/// Runs the VOP entirely on the GPU the way the paper's optimized baseline
/// implementations do: one monolithic kernel over the whole dataset after
/// serial host staging. (`partitions` is accepted for signature symmetry
/// with [`software_pipelining`] but the optimized baselines launch once.)
///
/// # Errors
///
/// Propagates partitioning errors.
pub fn gpu_baseline(platform: &Platform, vop: &Vop, partitions: usize) -> Result<BaselineReport> {
    let _ = partitions;
    run_single_gpu(platform, vop, 1, false)
}

/// The software-pipelining reference (Fig 6): identical GPU work, but each
/// chunk's host staging overlaps the previous chunk's kernel.
///
/// # Errors
///
/// Propagates partitioning errors.
pub fn software_pipelining(
    platform: &Platform,
    vop: &Vop,
    partitions: usize,
) -> Result<BaselineReport> {
    run_single_gpu(platform, vop, partitions, true)
}

fn run_single_gpu(
    platform: &Platform,
    vop: &Vop,
    partitions: usize,
    pipelined: bool,
) -> Result<BaselineReport> {
    let hlops = partition_vop(vop, partitions)?;
    let kernel = vop.kernel();
    let inputs: Vec<&Tensor> = vop.inputs().iter().collect();
    let (rows, cols) = vop.partition_space();
    let mut output = kernel.shape().allocate_output(rows, cols);

    let profiles = platform.device_profiles();
    let bench = platform.bench_profile();
    let mut gpu = DeviceTimeline::new(profiles[GPU]);
    let work_per_elem = kernel.work_per_element();

    // Host staging per chunk, as a fraction of that chunk's GPU time.
    let mut staging_done = SimTime::ZERO;
    let mut cpu_busy = 0.0f64;
    let mut end = SimTime::ZERO;
    for h in &hlops {
        let work = h.elements() as f64 * work_per_elem;
        let stage = bench.host_staging_frac * work / profiles[GPU].throughput;
        cpu_busy += stage;
        let stage_start = if pipelined {
            // Overlap with whatever the GPU is doing.
            staging_done
        } else {
            // Synchronous: stage only after the previous kernel finished.
            staging_done.max(gpu.free_at())
        };
        staging_done = stage_start + stage;
        end = gpu.execute(staging_done, work);
    }
    // Real compute (exact), fanned out over host threads.
    let tasks: Vec<crate::exec::ComputeTask> = hlops
        .iter()
        .map(|h| crate::exec::ComputeTask {
            tile: h.tile,
            npu: false,
        })
        .collect();
    crate::exec::compute_tasks(
        kernel,
        &inputs,
        &tasks,
        &mut output,
        crate::exec::default_threads(),
    );
    kernel.finalize(&mut output);

    let makespan = end.as_secs();
    let mut meter = EnergyMeter::new(platform.idle_power_w());
    meter.record_busy(
        profiles[GPU].kind,
        gpu.busy_time(),
        profiles[GPU].active_power_w,
    );
    meter.record_busy(profiles[CPU].kind, cpu_busy, profiles[CPU].active_power_w);
    let energy = meter.finish(makespan);

    // Baseline footprint: the optimized monolithic GPU implementations
    // keep whole-dataset intermediate buffers resident (Fig 11).
    let n = (rows * cols) as u64;
    let mut mem = MemoryTracker::new();
    mem.alloc("inputs", 4 * n * vop.inputs().len() as u64);
    mem.alloc("output", 4 * output.len() as u64);
    mem.alloc(
        "gpu-intermediates",
        (bench.gpu_intermediate * (4 * n) as f64) as u64,
    );

    Ok(BaselineReport {
        output,
        makespan_s: makespan,
        energy,
        peak_memory_bytes: mem.peak_bytes(),
    })
}

/// Computes the exact whole-dataset reference output (no timing model) —
/// the ground truth for MAPE/SSIM.
pub fn exact_reference(vop: &Vop) -> Tensor {
    let kernel = vop.kernel();
    let inputs: Vec<&Tensor> = vop.inputs().iter().collect();
    let (rows, cols) = vop.partition_space();
    crate::exec::compute_exact_parallel(kernel, &inputs, rows, cols, crate::exec::default_threads())
}

/// Total kernel work of a VOP in work units (for cost sanity checks).
pub fn total_work(vop: &Vop, partitions: usize) -> Result<f64> {
    let hlops = partition_vop(vop, partitions)?;
    Ok(hlops.iter().map(Hlop::elements).sum::<usize>() as f64 * vop.kernel().work_per_element())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::mape;
    use shmt_kernels::Benchmark;

    fn vop(b: Benchmark, n: usize) -> Vop {
        Vop::from_benchmark(b, b.generate_inputs(n, n, 5)).unwrap()
    }

    #[test]
    fn baseline_output_is_exact() {
        let v = vop(Benchmark::Laplacian, 128);
        let b = gpu_baseline(&Platform::jetson(Benchmark::Laplacian), &v, 8).unwrap();
        let reference = exact_reference(&v);
        assert_eq!(mape(&reference, &b.output), 0.0);
    }

    #[test]
    fn pipelining_is_faster_than_sync_baseline() {
        let b = Benchmark::Sobel; // staging fraction 0.25
        let v = vop(b, 256);
        // Slow virtual platform so compute (not launch overhead) dominates
        // at test-sized datasets, as it does at the paper's 8192x8192.
        let p = Platform::with_profiles(
            crate::calibration::Calibration {
                gpu_throughput: 1.0e6,
                ..Default::default()
            },
            crate::calibration::bench_profile(b),
        );
        let base = gpu_baseline(&p, &v, 16).unwrap();
        let pipe = software_pipelining(&p, &v, 16).unwrap();
        assert!(pipe.makespan_s < base.makespan_s);
        // The gain is bounded by the staging fraction.
        let speedup = base.makespan_s / pipe.makespan_s;
        assert!(speedup < 1.35, "speedup = {speedup}");
        assert!(speedup > 1.05, "speedup = {speedup}");
    }

    #[test]
    fn baseline_energy_uses_gpu_power() {
        let b = Benchmark::Fft;
        let v = vop(b, 128);
        let r = gpu_baseline(&Platform::jetson(b), &v, 8).unwrap();
        assert!(r.energy.active_j > 0.0);
        assert!(r.edp() > 0.0);
    }

    #[test]
    fn total_work_scales_with_elements() {
        let v64 = vop(Benchmark::MeanFilter, 64);
        let v128 = vop(Benchmark::MeanFilter, 128);
        let w64 = total_work(&v64, 4).unwrap();
        let w128 = total_work(&v128, 4).unwrap();
        assert!((w128 / w64 - 4.0).abs() < 1e-9);
    }
}
