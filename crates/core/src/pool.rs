//! A long-lived host compute pool shared by every concurrent run.
//!
//! The seed runtime spawned a fresh `std::thread::scope` per
//! [`crate::exec::compute_tasks`] call, which made every VOP execution pay
//! thread start-up and tear-down and — more importantly — meant two
//! concurrent [`crate::runtime::ShmtRuntime`] executions each spun up
//! their own private workers. The serving layer (`shmt-serve`) multiplexes
//! many VOP requests over one host, so the workers now live in a
//! [`ComputePool`]: a fixed set of threads pulling type-erased jobs from
//! one shared injector queue. Concurrent runs interleave their tile tasks
//! on the same workers, the paper-§3.3.1 "monitor threads" become
//! persistent, and per-run spawn cost disappears.
//!
//! Design constraints, in order:
//!
//! * **std-only** — the workspace is offline; the queue is a
//!   `Mutex<VecDeque>` + `Condvar`, not a lock-free deque.
//! * **Determinism** — the pool never influences *what* is computed, only
//!   *where*; callers assemble results by task index, so output bits do
//!   not depend on worker count or interleaving.
//! * **Borrowed jobs** — kernel, inputs, and output tiles are borrowed
//!   from the caller's stack. [`ComputePool::scope`] erases the job
//!   lifetime to `'static` for the queue and then blocks until every job
//!   of the batch has finished, which is exactly the guarantee that makes
//!   the erasure sound (the same contract as `std::thread::scope`).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A type-erased unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued unit of work: either an owned boxed job
/// ([`ComputePool::scope`]) or one claim on a batch-shared closure
/// ([`ComputePool::scope_fn`], which enqueues `n` copies of one borrowed
/// closure and so never boxes — the warm queue re-uses its deque
/// capacity and the whole submission is allocation-free).
enum Task {
    Boxed(Job),
    Shared(SharedTask),
}

/// One claim on a `scope_fn` batch: raw pointers to the caller-owned
/// closure and the caller's stack-allocated [`Batch`].
///
/// Soundness: `scope_fn` does not return (normally or by unwind) until
/// the batch's `remaining` count hits zero, i.e. until every queued
/// claim has been consumed, so both pointees strictly outlive every
/// copy of this struct in the queue or in flight — the same contract
/// that makes `scope`'s lifetime erasure sound.
#[derive(Clone, Copy)]
struct SharedTask {
    job: *const (dyn Fn() + Sync),
    batch: *const Batch,
}

// SAFETY: the pointees are `Sync` (`dyn Fn() + Sync`; `Batch` holds only
// `Mutex`/`Condvar`) and outlive the task per the contract above, so
// moving the pointers across threads is safe.
unsafe impl Send for SharedTask {}

/// Shared state between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when work arrives or shutdown begins.
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// Runs one queued task, catching panics for shared claims (boxed jobs
/// carry their own catch wrapper).
fn run_task(task: Task) {
    match task {
        Task::Boxed(job) => job(),
        Task::Shared(t) => {
            // SAFETY: see `SharedTask` — both pointers are live until
            // the batch completes, which cannot happen before this claim
            // decrements `remaining` below.
            let (job, batch) = unsafe { (&*t.job, &*t.batch) };
            if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = batch.panic.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            let mut remaining = batch
                .remaining
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *remaining -= 1;
            if *remaining == 0 {
                batch.batch_done.notify_all();
            }
        }
    }
}

/// Completion bookkeeping for one [`ComputePool::scope`] batch.
struct Batch {
    /// Jobs of this batch still running or queued.
    remaining: Mutex<usize>,
    batch_done: Condvar,
    /// First panic payload raised by a job of this batch, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fixed-size pool of persistent worker threads fed from one shared
/// work queue.
///
/// Independent callers (concurrent runtime executions, the serving
/// layer's request executors) submit batches through [`ComputePool::scope`]
/// and their jobs interleave on the same workers.
pub struct ComputePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ComputePool {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // A failed spawn (resource exhaustion) degrades to fewer workers
        // instead of panicking: `scope` is correct at any worker count
        // because the submitting thread helps drain the queue.
        let workers = (0..workers.max(1))
            .map_while(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("shmt-compute-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        ComputePool { shared, workers }
    }

    /// The process-wide pool shared by every runtime instance.
    ///
    /// Sized by [`crate::exec::default_threads`] (so `SHMT_THREADS` is
    /// honored) but at least 2, so that two concurrent runs keep making
    /// independent progress even on single-core hosts. Created on first
    /// use and kept for the life of the process.
    pub fn global() -> &'static ComputePool {
        static GLOBAL: OnceLock<ComputePool> = OnceLock::new();
        GLOBAL.get_or_init(|| ComputePool::new(crate::exec::default_threads().max(2)))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of borrowed jobs to completion on the pool.
    ///
    /// Blocks until every job has finished, so jobs may borrow from the
    /// caller's stack even though the queue itself is `'static`. Jobs from
    /// concurrent `scope` calls interleave in the shared queue in FIFO
    /// order.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is captured (the worker thread
    /// survives), the rest of the batch still runs, and the first payload
    /// is re-raised here once the batch has drained.
    pub fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let batch = Arc::new(Batch {
            remaining: Mutex::new(jobs.len()),
            batch_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for job in jobs {
                // SAFETY: the job may borrow data with lifetime 'env. This
                // function does not return until `remaining` reaches zero,
                // i.e. until the job has run (or been dropped) — so every
                // borrow it carries outlives its use, exactly as with
                // `std::thread::scope`. The transmute only erases the
                // lifetime parameter; the vtable and data pointer are
                // unchanged.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                let batch = Arc::clone(&batch);
                queue.push_back(Task::Boxed(Box::new(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(job));
                    if let Err(payload) = result {
                        let mut slot = batch.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        slot.get_or_insert(payload);
                    }
                    let mut remaining = batch
                        .remaining
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    *remaining -= 1;
                    if *remaining == 0 {
                        batch.batch_done.notify_all();
                    }
                })));
            }
            self.shared.work_ready.notify_all();
        }

        self.help_until_batch_done(&batch);
    }

    /// Runs `claims` invocations of one shared borrowed closure to
    /// completion on the pool — the allocation-free form of
    /// [`ComputePool::scope`].
    ///
    /// Where `scope` boxes every job, `scope_fn` enqueues `claims`
    /// lightweight references to the single closure, so a warm pool
    /// performs no heap allocation at all (the deque re-uses its
    /// capacity; the batch bookkeeping lives on this stack frame). The
    /// closure must coordinate its own work division — the executor
    /// does this with an atomic task cursor.
    ///
    /// Blocks until all `claims` invocations have finished, which is
    /// what makes handing borrowed pointers to the queue sound.
    ///
    /// # Panics
    ///
    /// As with [`ComputePool::scope`]: a panicking invocation is caught,
    /// the rest of the batch still runs, and the first payload is
    /// re-raised here once the batch has drained.
    pub fn scope_fn(&self, claims: usize, job: &(dyn Fn() + Sync)) {
        if claims == 0 {
            return;
        }
        let batch = Batch {
            remaining: Mutex::new(claims),
            batch_done: Condvar::new(),
            panic: Mutex::new(None),
        };
        // SAFETY: erases the borrow lifetimes to 'static for the queue.
        // `help_until_batch_done` below does not return until every
        // claim has run, so the pointees (the caller's closure and the
        // stack `batch`) outlive every queued copy. Workers touch
        // `batch` for the last time while holding `remaining`'s lock,
        // whose release happens-before the submitter's final wakeup.
        let task = SharedTask {
            job: unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync)>(job)
            },
            batch: &batch,
        };
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for _ in 0..claims {
                queue.push_back(Task::Shared(task));
            }
            self.shared.work_ready.notify_all();
        }
        self.help_until_batch_done(&batch);
    }

    /// Help: run queued tasks on the submitting thread (they may belong
    /// to any batch — work conservation beats fairness) until the queue
    /// drains, then sleep until the workers finish this batch's tail.
    /// Helping keeps the submitter contributing compute instead of
    /// idling, exactly like the joiner of the old `std::thread::scope`.
    /// Re-raises the batch's first captured panic after completion.
    fn help_until_batch_done(&self, batch: &Batch) {
        loop {
            let task = {
                let mut queue = self
                    .shared
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                queue.pop_front()
            };
            match task {
                Some(task) => run_task(task),
                None => break,
            }
        }
        let mut remaining = batch
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *remaining > 0 {
            // This batch's jobs are all either done or running on workers
            // (the queue was drained above and we enqueued them before
            // helping), so the batch-done signal is the only thing left to
            // wait for.
            remaining = batch
                .batch_done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);

        let payload = batch
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(task) => run_task(task), // panics are caught inside the task
            None => return,
        }
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_job_with_borrows() {
        let pool = ComputePool::new(3);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..17)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn concurrent_scopes_interleave_on_one_pool() {
        let pool = Arc::new(ComputePool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let local = AtomicUsize::new(0);
                    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..25)
                        .map(|_| {
                            let local = &local;
                            Box::new(move || {
                                local.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.scope(jobs);
                    total.fetch_add(local.load(Ordering::Relaxed), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn job_panic_propagates_to_submitter_and_pool_survives() {
        let pool = ComputePool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| panic!("kernel contract violated"))];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.scope(boom)));
        assert!(caught.is_err(), "panic must reach the submitting thread");

        // Workers caught the panic, so the pool still runs later batches.
        let ok = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let ok = &ok;
                Box::new(move || {
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ComputePool::new(1);
        pool.scope(Vec::new());
        pool.scope_fn(0, &|| unreachable!("zero claims must not run"));
    }

    #[test]
    fn scope_fn_runs_every_claim() {
        let pool = ComputePool::new(3);
        let hits = AtomicUsize::new(0);
        pool.scope_fn(23, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 23);
    }

    #[test]
    fn scope_fn_panic_propagates_and_pool_survives() {
        let pool = ComputePool::new(2);
        let n = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_fn(4, &|| {
                if n.fetch_add(1, Ordering::Relaxed) == 2 {
                    panic!("shared job failed");
                }
            });
        }));
        assert!(caught.is_err(), "panic must reach the submitting thread");
        let ok = AtomicUsize::new(0);
        pool.scope_fn(4, &|| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_scope_fn_batches_share_the_pool() {
        let pool = Arc::new(ComputePool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let local = AtomicUsize::new(0);
                    pool.scope_fn(25, &|| {
                        local.fetch_add(1, Ordering::Relaxed);
                    });
                    total.fetch_add(local.load(Ordering::Relaxed), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
