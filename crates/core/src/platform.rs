//! The modeled hardware platform: device profiles, bus, and power, resolved
//! from the calibration tables for one benchmark (paper §4.1).

use hetsim::{DeviceProfile, Interconnect};
use shmt_kernels::Benchmark;

use crate::calibration::{bench_profile, generic_profile, BenchProfile, Calibration};

/// The virtual Jetson-Nano-plus-Edge-TPU platform, specialized with the
/// per-benchmark device speed ratios from the calibration tables.
///
/// Device order matches the scheduler's queue indices:
/// [`GPU`](crate::sched::GPU), [`CPU`](crate::sched::CPU), [`TPU`](crate::sched::TPU).
///
/// # Examples
///
/// ```
/// use shmt::platform::Platform;
/// use shmt_kernels::Benchmark;
///
/// let platform = Platform::jetson(Benchmark::Fft);
/// let profiles = platform.device_profiles();
/// // The Edge TPU runs FFT 3.22x faster than the GPU (paper Fig 2).
/// assert!(profiles[2].throughput > 3.0 * profiles[0].throughput);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    cal: Calibration,
    bench: BenchProfile,
    profiles: [DeviceProfile; 3],
    idle_power_w: f64,
}

impl Platform {
    /// The prototype platform specialized for one benchmark.
    pub fn jetson(benchmark: Benchmark) -> Self {
        Self::with_profiles(Calibration::default(), bench_profile(benchmark))
    }

    /// The prototype platform with generic (non-benchmark) VOP ratios.
    pub fn generic() -> Self {
        Self::with_profiles(Calibration::default(), generic_profile())
    }

    /// Builds a platform from explicit calibration values.
    pub fn with_profiles(cal: Calibration, bench: BenchProfile) -> Self {
        let gpu = DeviceProfile::jetson_gpu(cal.gpu_throughput);
        let cpu = DeviceProfile::arm_cpu(cal.gpu_throughput * bench.cpu_ratio);
        let tpu = DeviceProfile::edge_tpu(cal.gpu_throughput * bench.tpu_ratio);
        Platform {
            cal,
            bench,
            profiles: [gpu, cpu, tpu],
            idle_power_w: 3.02,
        }
    }

    /// Global calibration constants.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// The per-benchmark calibration profile.
    pub fn bench_profile(&self) -> &BenchProfile {
        &self.bench
    }

    /// The three device profiles in queue-index order (GPU, CPU, TPU).
    pub fn device_profiles(&self) -> [DeviceProfile; 3] {
        self.profiles
    }

    /// A fresh instance of the shared interconnect.
    pub fn bus(&self) -> Interconnect {
        Interconnect::jetson_prototype()
    }

    /// The platform's measured idle power floor (watts).
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{CPU, GPU, TPU};

    #[test]
    fn device_order_matches_queue_indices() {
        let p = Platform::jetson(Benchmark::Sobel);
        let profiles = p.device_profiles();
        assert_eq!(profiles[GPU].kind, hetsim::DeviceKind::Gpu);
        assert_eq!(profiles[CPU].kind, hetsim::DeviceKind::Cpu);
        assert_eq!(profiles[TPU].kind, hetsim::DeviceKind::EdgeTpu);
    }

    #[test]
    fn throughputs_follow_calibration_ratios() {
        let p = Platform::jetson(Benchmark::MeanFilter); // tpu_ratio 0.31
        let profiles = p.device_profiles();
        let r = profiles[TPU].throughput / profiles[GPU].throughput;
        assert!((r - 0.31).abs() < 1e-9);
    }

    #[test]
    fn generic_platform_is_usable() {
        let p = Platform::generic();
        assert!(p.device_profiles()[GPU].throughput > 0.0);
        assert_eq!(p.idle_power_w(), 3.02);
    }
}
