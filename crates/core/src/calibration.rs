//! Calibration of the virtual platform against the paper's measurements.
//!
//! We cannot re-measure the Jetson Nano + Edge TPU silicon, so the
//! per-benchmark *device speed ratios* come from the paper's own Fig 2
//! (solo Edge TPU speedup over the GPU baseline for each benchmark), and a
//! small set of global overhead parameters (casting cost, bus, launch
//! overheads) is tuned once. Quality numbers are **not** calibrated — they
//! come from genuinely computed outputs.
//!
//! CPU ratios are not reported in the paper; they are chosen on
//! microarchitectural grounds (the quad-A57 is relatively strong on
//! memory-bound 3x3 stencils and weak on compute-dense transforms), at
//! magnitudes consistent with the paper's measured work-stealing speedups
//! exceeding `1 + tpu_ratio` for the stencil benchmarks.

//! The static tables above seed the model; [`AdaptiveConfig`] closes the
//! loop at run time, overriding the static ratios with *observed* EWMA
//! throughput from a [`shmt_trace::Observatory`] once a device has
//! enough spans, and scaling the planner's TPU admission from the
//! quality guard's measured MAPE EWMA.

use shmt_kernels::Benchmark;
use shmt_trace::DeviceProfile;

use crate::error::{Result, ShmtError};
use crate::sched::TPU;

/// Global platform calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Sustained GPU throughput in kernel work-units per second.
    pub gpu_throughput: f64,
    /// CPU-side cost of casting one element to/from int8 for the Edge TPU
    /// (seconds per element), §3.3.2's data-type casting.
    pub cast_s_per_elem: f64,
    /// Bytes per element crossing the PCIe bus to the Edge TPU (int8 in).
    pub tpu_bytes_per_elem_in: f64,
    /// Bytes per element returning from the Edge TPU (int8 out).
    pub tpu_bytes_per_elem_out: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            // ~472 GFLOPS peak Maxwell; sustained effective rate on these
            // memory-bound kernels is far lower.
            gpu_throughput: 20.0e9,
            cast_s_per_elem: 0.2e-9,
            tpu_bytes_per_elem_in: 1.0,
            tpu_bytes_per_elem_out: 1.0,
        }
    }
}

/// Per-benchmark calibration: device speed ratios and model factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Application-dependent fraction of partitions that are generally
    /// critical — the paper's per-VOP Top-K hint "the programmer or the
    /// library composer should provide" (§3.5).
    pub criticality_hint: f64,
    /// Edge TPU sustained speed relative to the GPU for this kernel —
    /// the paper's Fig 2 "edge TPU" bar.
    pub tpu_ratio: f64,
    /// CPU sustained speed relative to the GPU (not reported by the paper;
    /// see module docs).
    pub cpu_ratio: f64,
    /// CPU-side per-chunk staging work in the *baseline* GPU
    /// implementation, as a fraction of GPU kernel time. Serial in the
    /// baseline, overlapped by software pipelining and by SHMT's runtime.
    pub host_staging_frac: f64,
    /// GPU intermediate buffers, in dataset-sized f32 units (Fig 11's
    /// footprint model: Edge TPU HLOPs replace these with on-chip buffers).
    pub gpu_intermediate: f64,
}

/// The calibrated per-benchmark profiles.
pub fn bench_profile(b: Benchmark) -> BenchProfile {
    // tpu_ratio column is Fig 2 of the paper, verbatim.
    match b {
        Benchmark::Blackscholes => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.84,
            cpu_ratio: 0.30,
            host_staging_frac: 0.25,
            gpu_intermediate: 0.1,
        },
        Benchmark::Dct8x8 => BenchProfile {
            criticality_hint: 0.4,
            tpu_ratio: 1.99,
            cpu_ratio: 0.20,
            host_staging_frac: 0.10,
            gpu_intermediate: 0.3,
        },
        Benchmark::Dwt => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.31,
            cpu_ratio: 0.25,
            host_staging_frac: 0.10,
            gpu_intermediate: 0.5,
        },
        Benchmark::Fft => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 3.22,
            cpu_ratio: 0.20,
            host_staging_frac: 0.20,
            gpu_intermediate: 0.5,
        },
        Benchmark::Histogram => BenchProfile {
            criticality_hint: 0.25,
            tpu_ratio: 1.55,
            cpu_ratio: 0.40,
            host_staging_frac: 0.06,
            gpu_intermediate: 0.1,
        },
        Benchmark::Hotspot => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.77,
            cpu_ratio: 0.30,
            host_staging_frac: 0.03,
            gpu_intermediate: 0.4,
        },
        Benchmark::Laplacian => BenchProfile {
            criticality_hint: 0.5,
            tpu_ratio: 0.58,
            cpu_ratio: 0.85,
            host_staging_frac: 0.12,
            gpu_intermediate: 0.2,
        },
        Benchmark::MeanFilter => BenchProfile {
            criticality_hint: 0.35,
            tpu_ratio: 0.31,
            cpu_ratio: 0.65,
            host_staging_frac: 0.20,
            gpu_intermediate: 0.2,
        },
        Benchmark::Sobel => BenchProfile {
            criticality_hint: 0.4,
            tpu_ratio: 0.71,
            cpu_ratio: 0.50,
            host_staging_frac: 0.25,
            gpu_intermediate: 3.0,
        },
        Benchmark::Srad => BenchProfile {
            criticality_hint: 0.35,
            tpu_ratio: 2.30,
            cpu_ratio: 0.20,
            host_staging_frac: 0.13,
            gpu_intermediate: 2.5,
        },
    }
}

/// Profile used for non-benchmark VOPs (the Table 1 vector primitives).
pub fn generic_profile() -> BenchProfile {
    BenchProfile {
        criticality_hint: 0.2,
        tpu_ratio: 1.0,
        cpu_ratio: 0.30,
        host_staging_frac: 0.05,
        gpu_intermediate: 0.1,
    }
}

/// Gates and clamps for the online recalibration loop.
///
/// `calibrate` turns an observation stream ([`shmt_trace::Observatory`]
/// device profiles) into an [`AdaptiveCalibration`]: per-device
/// observed-over-modeled speed factors, plus a TPU admission multiplier
/// derived from the guard's measured MAPE EWMA. Every output is a pure
/// function of the observations and this config — no clocks, no
/// randomness — so the same stream always yields the same calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch. Disabled, `calibrate` always returns the neutral
    /// calibration and downstream behavior is bit-identical to the
    /// static planner.
    pub enabled: bool,
    /// Spans of the planned HLOP kind a device's EWMA must cover before
    /// its observed throughput overrides the static model.
    pub min_kind_spans: u64,
    /// MAPE observations the TPU profile must hold before quality
    /// feedback adjusts its admission.
    pub min_mape_observations: u64,
    /// Deadband around 1.0: observed/modeled ratios within
    /// `[1/deadband, deadband]` are healthy noise and stay at exactly
    /// 1.0 rather than perturbing plans.
    pub speed_deadband: f64,
    /// Symmetric clamp on speed factors (`[1/max, max]`).
    pub max_speed_factor: f64,
    /// Quality target used when the request carries no SLO of its own.
    /// `None` disables admission adaptation for SLO-less requests.
    pub target_mape: Option<f64>,
    /// Upper clamp on the admission multiplier when loosening.
    pub max_admission: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            min_kind_spans: 3,
            min_mape_observations: 3,
            speed_deadband: 1.5,
            max_speed_factor: 16.0,
            target_mape: None,
            max_admission: 2.0,
        }
    }
}

impl AdaptiveConfig {
    /// An enabled config with default gates.
    pub fn enabled() -> Self {
        AdaptiveConfig {
            enabled: true,
            ..AdaptiveConfig::default()
        }
    }

    /// Resolves observed device profiles into a calibration.
    ///
    /// `modeled_elems_per_s[d]` is what the static platform model says
    /// device `d` sustains on this kernel (device throughput in work
    /// units/s divided by the kernel's work per element) — the
    /// denominator the observed EWMA is compared against. `kind` is the
    /// opcode being planned; only that kind's EWMA is trusted.
    /// `target_mape` is the request's quality SLO, falling back to
    /// [`AdaptiveConfig::target_mape`].
    pub fn calibrate(
        &self,
        profiles: &[DeviceProfile],
        modeled_elems_per_s: [f64; 3],
        kind: &str,
        target_mape: Option<f64>,
    ) -> AdaptiveCalibration {
        let mut cal = AdaptiveCalibration::neutral();
        if !self.enabled {
            return cal;
        }
        for (d, &modeled) in modeled_elems_per_s.iter().enumerate() {
            let Some(p) = profiles.get(d) else { continue };
            if p.kind_span_count(kind) < self.min_kind_spans || modeled <= 0.0 {
                continue;
            }
            let Some(&observed) = p.ewma_throughput.get(kind) else {
                continue;
            };
            if observed <= 0.0 {
                continue;
            }
            let factor = observed / modeled;
            if factor >= 1.0 / self.speed_deadband && factor <= self.speed_deadband {
                continue; // healthy: exactly neutral, not approximately
            }
            cal.speed_factors[d] = factor.clamp(1.0 / self.max_speed_factor, self.max_speed_factor);
        }
        if let Some(target) = target_mape.or(self.target_mape) {
            if target > 0.0 {
                if let Some(p) = profiles.get(TPU) {
                    if p.mape_observations >= self.min_mape_observations {
                        if let Some(m) = p.ewma_mape {
                            if m > target {
                                // Observed error above target: tighten
                                // superlinearly so a badly miscalibrated
                                // TPU is squeezed out fast.
                                cal.tpu_admission = (target / m).powi(2);
                            } else if m < target && m >= 0.0 {
                                // Headroom: admit more approximate work,
                                // up to the clamp.
                                cal.tpu_admission = (target / m).min(self.max_admission);
                            }
                        }
                    }
                }
            }
        }
        cal
    }
}

/// A resolved adaptation decision: what the planner and scheduler apply
/// to one run. The neutral calibration is the exact identity — factors
/// of 1.0 multiply and divide bitwise-exactly — so carrying it through
/// every code path keeps adaptation-off runs bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveCalibration {
    /// Observed-over-modeled speed per device (GPU, CPU, TPU). The
    /// scheduler divides its *decision-side* cost estimates by these;
    /// virtual-time charging never sees them.
    pub speed_factors: [f64; 3],
    /// Multiplier on the planner's TPU admission aperture: scales the
    /// QAWS window share left to the TPU and its device limit. 1.0 is
    /// the static planner; 0.0 evicts the TPU from planning.
    pub tpu_admission: f64,
}

impl AdaptiveCalibration {
    /// The identity calibration (no observed overrides).
    pub fn neutral() -> Self {
        AdaptiveCalibration {
            speed_factors: [1.0; 3],
            tpu_admission: 1.0,
        }
    }

    /// Whether this calibration is the exact identity.
    pub fn is_neutral(&self) -> bool {
        *self == Self::neutral()
    }

    /// Rejects non-finite or non-positive factors before a run.
    pub fn validate(&self) -> Result<()> {
        for (d, &f) in self.speed_factors.iter().enumerate() {
            if !f.is_finite() || f <= 0.0 {
                return Err(ShmtError::InvalidConfig(format!(
                    "adaptive speed factor for device {d} must be positive and finite, got {f}"
                )));
            }
        }
        if !self.tpu_admission.is_finite() || self.tpu_admission < 0.0 {
            return Err(ShmtError::InvalidConfig(format!(
                "adaptive TPU admission must be finite and >= 0, got {}",
                self.tpu_admission
            )));
        }
        Ok(())
    }
}

impl Default for AdaptiveCalibration {
    fn default() -> Self {
        Self::neutral()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmt_kernels::ALL_BENCHMARKS;

    #[test]
    fn tpu_ratios_match_figure_2() {
        // The headline numbers of the paper's motivation figure.
        assert_eq!(bench_profile(Benchmark::Fft).tpu_ratio, 3.22);
        assert_eq!(bench_profile(Benchmark::Srad).tpu_ratio, 2.30);
        assert_eq!(bench_profile(Benchmark::MeanFilter).tpu_ratio, 0.31);
        // Geometric mean of the solo TPU column is ~0.95 (paper: "5%
        // slower than GPUs on average").
        let gmean = ALL_BENCHMARKS
            .iter()
            .map(|b| bench_profile(*b).tpu_ratio.ln())
            .sum::<f64>()
            .exp()
            .powf(0.1_f64);
        // exp(sum/10) == (exp(sum))^(1/10)
        assert!((gmean - 0.95).abs() < 0.02, "gmean = {gmean}");
    }

    #[test]
    fn all_profiles_are_sane() {
        for b in ALL_BENCHMARKS {
            let p = bench_profile(b);
            assert!(p.tpu_ratio > 0.0 && p.cpu_ratio > 0.0, "{b}");
            assert!((0.0..1.0).contains(&p.host_staging_frac), "{b}");
            assert!((0.0..=1.0).contains(&p.criticality_hint), "{b}");
            assert!(p.gpu_intermediate >= 0.0, "{b}");
        }
        let c = Calibration::default();
        assert!(c.gpu_throughput > 0.0 && c.cast_s_per_elem > 0.0);
    }

    use shmt_trace::Observatory;

    const MODELED: [f64; 3] = [1.0e6, 5.0e5, 7.1e5];

    #[test]
    fn disabled_config_is_always_neutral() {
        let mut obs = Observatory::new();
        for _ in 0..32 {
            obs.observe_span(0, "Sobel", 1000, 0.064); // far off model
            obs.observe_mape(2, 0.9);
        }
        let cal = AdaptiveConfig::default().calibrate(obs.profiles(), MODELED, "Sobel", Some(0.05));
        assert!(cal.is_neutral());
    }

    #[test]
    fn speed_factors_are_confidence_gated_and_deadbanded() {
        let cfg = AdaptiveConfig::enabled();
        let mut obs = Observatory::new();
        // Two spans of a 4x GPU slowdown: below the min_kind_spans gate.
        obs.observe_span(0, "Sobel", 1000, 0.004);
        obs.observe_span(0, "Sobel", 1000, 0.004);
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", None);
        assert!(cal.is_neutral(), "insufficient evidence stays neutral");
        // Third span clears the gate; the 4x slowdown is outside the
        // deadband, so the GPU factor converges toward 0.25.
        obs.observe_span(0, "Sobel", 1000, 0.004);
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", None);
        assert!(cal.speed_factors[0] < 0.5, "got {:?}", cal.speed_factors);
        assert_eq!(cal.speed_factors[1], 1.0, "unobserved device untouched");
        assert!(cal.validate().is_ok());
        // A device running within the deadband stays at exactly 1.0.
        for _ in 0..8 {
            obs.observe_span(1, "Sobel", 1000, 0.0021); // ~0.95x of model
        }
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", None);
        assert_eq!(cal.speed_factors[1], 1.0, "deadband means exactly 1.0");
        // The wrong kind's evidence never leaks into another plan.
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Fft", None);
        assert!(cal.is_neutral(), "Fft has no spans");
    }

    #[test]
    fn calibrate_is_deterministic_for_the_same_stream() {
        let feed = |obs: &mut Observatory| {
            for i in 0..16 {
                obs.observe_span(0, "Sobel", 1000 + i, 0.004);
                obs.observe_mape(2, 0.2 + (i as f64) * 0.01);
            }
        };
        let (mut a, mut b) = (Observatory::new(), Observatory::new());
        feed(&mut a);
        feed(&mut b);
        let cfg = AdaptiveConfig::enabled();
        let ca = cfg.calibrate(a.profiles(), MODELED, "Sobel", Some(0.05));
        let cb = cfg.calibrate(b.profiles(), MODELED, "Sobel", Some(0.05));
        assert_eq!(ca, cb, "same stream, same calibration, bit for bit");
        assert!(!ca.is_neutral());
    }

    #[test]
    fn admission_tightens_on_breach_and_loosens_on_headroom() {
        let cfg = AdaptiveConfig::enabled();
        let mut obs = Observatory::new();
        for _ in 0..8 {
            obs.observe_mape(2, 0.50);
        }
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", Some(0.05));
        assert!(
            cal.tpu_admission < 0.05,
            "10x over target must squeeze hard, got {}",
            cal.tpu_admission
        );
        let mut obs = Observatory::new();
        for _ in 0..8 {
            obs.observe_mape(2, 0.001);
        }
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", Some(0.05));
        assert_eq!(cal.tpu_admission, cfg.max_admission, "headroom clamps");
        // No SLO anywhere: admission stays neutral no matter the EWMA.
        let cal = cfg.calibrate(obs.profiles(), MODELED, "Sobel", None);
        assert_eq!(cal.tpu_admission, 1.0);
    }

    #[test]
    fn validate_rejects_degenerate_calibrations() {
        let mut cal = AdaptiveCalibration::neutral();
        cal.speed_factors[1] = 0.0;
        assert!(cal.validate().is_err());
        let mut cal = AdaptiveCalibration::neutral();
        cal.tpu_admission = f64::NAN;
        assert!(cal.validate().is_err());
        assert!(AdaptiveCalibration::neutral().validate().is_ok());
    }
}
