//! Calibration of the virtual platform against the paper's measurements.
//!
//! We cannot re-measure the Jetson Nano + Edge TPU silicon, so the
//! per-benchmark *device speed ratios* come from the paper's own Fig 2
//! (solo Edge TPU speedup over the GPU baseline for each benchmark), and a
//! small set of global overhead parameters (casting cost, bus, launch
//! overheads) is tuned once. Quality numbers are **not** calibrated — they
//! come from genuinely computed outputs.
//!
//! CPU ratios are not reported in the paper; they are chosen on
//! microarchitectural grounds (the quad-A57 is relatively strong on
//! memory-bound 3x3 stencils and weak on compute-dense transforms), at
//! magnitudes consistent with the paper's measured work-stealing speedups
//! exceeding `1 + tpu_ratio` for the stencil benchmarks.

use shmt_kernels::Benchmark;

/// Global platform calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Sustained GPU throughput in kernel work-units per second.
    pub gpu_throughput: f64,
    /// CPU-side cost of casting one element to/from int8 for the Edge TPU
    /// (seconds per element), §3.3.2's data-type casting.
    pub cast_s_per_elem: f64,
    /// Bytes per element crossing the PCIe bus to the Edge TPU (int8 in).
    pub tpu_bytes_per_elem_in: f64,
    /// Bytes per element returning from the Edge TPU (int8 out).
    pub tpu_bytes_per_elem_out: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            // ~472 GFLOPS peak Maxwell; sustained effective rate on these
            // memory-bound kernels is far lower.
            gpu_throughput: 20.0e9,
            cast_s_per_elem: 0.2e-9,
            tpu_bytes_per_elem_in: 1.0,
            tpu_bytes_per_elem_out: 1.0,
        }
    }
}

/// Per-benchmark calibration: device speed ratios and model factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Application-dependent fraction of partitions that are generally
    /// critical — the paper's per-VOP Top-K hint "the programmer or the
    /// library composer should provide" (§3.5).
    pub criticality_hint: f64,
    /// Edge TPU sustained speed relative to the GPU for this kernel —
    /// the paper's Fig 2 "edge TPU" bar.
    pub tpu_ratio: f64,
    /// CPU sustained speed relative to the GPU (not reported by the paper;
    /// see module docs).
    pub cpu_ratio: f64,
    /// CPU-side per-chunk staging work in the *baseline* GPU
    /// implementation, as a fraction of GPU kernel time. Serial in the
    /// baseline, overlapped by software pipelining and by SHMT's runtime.
    pub host_staging_frac: f64,
    /// GPU intermediate buffers, in dataset-sized f32 units (Fig 11's
    /// footprint model: Edge TPU HLOPs replace these with on-chip buffers).
    pub gpu_intermediate: f64,
}

/// The calibrated per-benchmark profiles.
pub fn bench_profile(b: Benchmark) -> BenchProfile {
    // tpu_ratio column is Fig 2 of the paper, verbatim.
    match b {
        Benchmark::Blackscholes => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.84,
            cpu_ratio: 0.30,
            host_staging_frac: 0.25,
            gpu_intermediate: 0.1,
        },
        Benchmark::Dct8x8 => BenchProfile {
            criticality_hint: 0.4,
            tpu_ratio: 1.99,
            cpu_ratio: 0.20,
            host_staging_frac: 0.10,
            gpu_intermediate: 0.3,
        },
        Benchmark::Dwt => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.31,
            cpu_ratio: 0.25,
            host_staging_frac: 0.10,
            gpu_intermediate: 0.5,
        },
        Benchmark::Fft => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 3.22,
            cpu_ratio: 0.20,
            host_staging_frac: 0.20,
            gpu_intermediate: 0.5,
        },
        Benchmark::Histogram => BenchProfile {
            criticality_hint: 0.25,
            tpu_ratio: 1.55,
            cpu_ratio: 0.40,
            host_staging_frac: 0.06,
            gpu_intermediate: 0.1,
        },
        Benchmark::Hotspot => BenchProfile {
            criticality_hint: 0.3,
            tpu_ratio: 0.77,
            cpu_ratio: 0.30,
            host_staging_frac: 0.03,
            gpu_intermediate: 0.4,
        },
        Benchmark::Laplacian => BenchProfile {
            criticality_hint: 0.5,
            tpu_ratio: 0.58,
            cpu_ratio: 0.85,
            host_staging_frac: 0.12,
            gpu_intermediate: 0.2,
        },
        Benchmark::MeanFilter => BenchProfile {
            criticality_hint: 0.35,
            tpu_ratio: 0.31,
            cpu_ratio: 0.65,
            host_staging_frac: 0.20,
            gpu_intermediate: 0.2,
        },
        Benchmark::Sobel => BenchProfile {
            criticality_hint: 0.4,
            tpu_ratio: 0.71,
            cpu_ratio: 0.50,
            host_staging_frac: 0.25,
            gpu_intermediate: 3.0,
        },
        Benchmark::Srad => BenchProfile {
            criticality_hint: 0.35,
            tpu_ratio: 2.30,
            cpu_ratio: 0.20,
            host_staging_frac: 0.13,
            gpu_intermediate: 2.5,
        },
    }
}

/// Profile used for non-benchmark VOPs (the Table 1 vector primitives).
pub fn generic_profile() -> BenchProfile {
    BenchProfile {
        criticality_hint: 0.2,
        tpu_ratio: 1.0,
        cpu_ratio: 0.30,
        host_staging_frac: 0.05,
        gpu_intermediate: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmt_kernels::ALL_BENCHMARKS;

    #[test]
    fn tpu_ratios_match_figure_2() {
        // The headline numbers of the paper's motivation figure.
        assert_eq!(bench_profile(Benchmark::Fft).tpu_ratio, 3.22);
        assert_eq!(bench_profile(Benchmark::Srad).tpu_ratio, 2.30);
        assert_eq!(bench_profile(Benchmark::MeanFilter).tpu_ratio, 0.31);
        // Geometric mean of the solo TPU column is ~0.95 (paper: "5%
        // slower than GPUs on average").
        let gmean = ALL_BENCHMARKS
            .iter()
            .map(|b| bench_profile(*b).tpu_ratio.ln())
            .sum::<f64>()
            .exp()
            .powf(0.1_f64);
        // exp(sum/10) == (exp(sum))^(1/10)
        assert!((gmean - 0.95).abs() < 0.02, "gmean = {gmean}");
    }

    #[test]
    fn all_profiles_are_sane() {
        for b in ALL_BENCHMARKS {
            let p = bench_profile(b);
            assert!(p.tpu_ratio > 0.0 && p.cpu_ratio > 0.0, "{b}");
            assert!((0.0..1.0).contains(&p.host_staging_frac), "{b}");
            assert!((0.0..=1.0).contains(&p.criticality_hint), "{b}");
            assert!(p.gpu_intermediate >= 0.0, "{b}");
        }
        let c = Calibration::default();
        assert!(c.gpu_throughput > 0.0 && c.cast_s_per_elem > 0.0);
    }
}
