//! Output-side quality control: online verification of approximate HLOP
//! results with exact re-execution repair (paper §3.6, Figure 7).
//!
//! The input half of the paper's IRA quality control — criticality
//! sampling — decides *before* execution which partitions may go to the
//! approximate device. This module closes the loop *after* execution: a
//! [`GuardConfig`]-driven quality guard samples pages of every HLOP the
//! Edge TPU produced, recomputes those pages exactly, estimates the
//! partition's error, and re-executes any partition whose estimate
//! exceeds the [`QualityBudget`] — so a mis-calibrated or faulted TPU can
//! never silently ship garbage into the aggregated result.
//!
//! Everything the guard does is charged in virtual time: page
//! recomputation and tile repair occupy an exact (fp32) device's timeline
//! through [`DeviceTimeline::occupy`], extend the makespan, show up in
//! the energy integral, and are visible in the trace as
//! `GuardVerify*`/`GuardRepair*` spans and `guard.*` counters. Like
//! `NullSink` and the empty `FaultPlan`, the disabled guard is inert: a
//! run with `enabled == false` is bit-identical to one on a build without
//! the guard at all.
//!
//! # Sampling math
//!
//! An HLOP's tile is divided into row-band *pages* of
//! [`GuardConfig::page_rows`] rows. The guard recomputes
//! [`GuardConfig::pages_per_hlop`] pages at evenly strided offsets
//! (page `⌊j·P/k⌋` for `j = 0..k` over `P` pages — deterministic, no
//! randomness) and takes the element-weighted mean of the per-page MAPEs
//! as the partition's error estimate. Pages are *measured*, not modeled:
//! on the sampled fraction the estimate is exact, so the post-repair
//! error over verified pages is structurally ≤ the budget whenever the
//! guard returns `Ok`.

use hetsim::{DeviceTimeline, SimTime};
use shmt_kernels::{Aggregation, Kernel};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;
use shmt_trace::{EventKind, TraceSink};

use crate::error::{Result, ShmtError};
use crate::exec::ComputeTask;
use crate::quality::mape;
use crate::sched::{CPU, GPU};

/// The quality contract a guarded run must honour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBudget {
    /// Maximum tolerated MAPE per approximate partition. A partition
    /// whose estimated error exceeds this is re-executed exactly.
    pub max_mape: f64,
}

impl Default for QualityBudget {
    fn default() -> Self {
        QualityBudget { max_mape: 0.25 }
    }
}

/// Configuration of the output-verification quality guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Whether the guard runs at all. Disabled (the default) is inert:
    /// reports are bit-identical to an unguarded run.
    pub enabled: bool,
    /// Whether over-budget partitions are re-executed exactly (the
    /// default). With `repair == false` the guard runs in *monitor*
    /// mode: it verifies and charges virtual time identically, but
    /// over-budget partitions keep their approximate output and their
    /// measured error flows into `true_mape` — the feedback signal the
    /// adaptive scheduler consumes.
    pub repair: bool,
    /// The error budget enforced on every approximate partition.
    pub budget: QualityBudget,
    /// Rows per sampled page.
    pub page_rows: usize,
    /// Pages recomputed exactly per approximate HLOP (clamped to the
    /// HLOP's page count).
    pub pages_per_hlop: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: false,
            repair: true,
            budget: QualityBudget::default(),
            page_rows: 8,
            pages_per_hlop: 2,
        }
    }
}

impl GuardConfig {
    /// An enabled guard enforcing `max_mape`, with default sampling.
    pub fn enforcing(max_mape: f64) -> Self {
        GuardConfig {
            enabled: true,
            budget: QualityBudget { max_mape },
            ..GuardConfig::default()
        }
    }

    /// An enabled guard that *measures* quality against `max_mape` but
    /// never repairs: over-budget partitions are reported through
    /// [`QualityReport::true_mape`], not re-executed.
    pub fn monitor(max_mape: f64) -> Self {
        GuardConfig {
            repair: false,
            ..GuardConfig::enforcing(max_mape)
        }
    }

    /// Validates the configuration (only consulted when enabled).
    ///
    /// # Errors
    ///
    /// Returns [`ShmtError::InvalidConfig`] for a non-positive page size
    /// or sample count, or a budget that is not a finite non-negative
    /// number.
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.page_rows == 0 {
            return Err(ShmtError::InvalidConfig(
                "guard page_rows must be positive".into(),
            ));
        }
        if self.pages_per_hlop == 0 {
            return Err(ShmtError::InvalidConfig(
                "guard pages_per_hlop must be positive".into(),
            ));
        }
        if !(self.budget.max_mape >= 0.0 && self.budget.max_mape.is_finite()) {
            return Err(ShmtError::InvalidConfig(format!(
                "guard budget must be finite and non-negative, got {}",
                self.budget.max_mape
            )));
        }
        Ok(())
    }
}

/// One exact re-execution the guard performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairRecord {
    /// The repaired HLOP's id.
    pub hlop: usize,
    /// The exact device charged for the re-execution.
    pub device: usize,
    /// The sampled-page error estimate that triggered the repair.
    pub estimated_mape: f64,
    /// The partition's true pre-repair MAPE over its whole tile.
    pub true_mape: f64,
}

/// What the quality guard observed and did during one run, attached to
/// [`crate::RunReport::quality`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualityReport {
    /// Whether the guard ran. All other fields are zero when it did not.
    pub enabled: bool,
    /// Whether the kernel's aggregation is page-verifiable (`Tile`
    /// aggregation; reduction kernels fold partials and have no
    /// per-partition output region to sample).
    pub page_verifiable: bool,
    /// HLOPs the approximate device produced.
    pub approx_hlops: usize,
    /// Approximate HLOPs the guard verified.
    pub checked_hlops: usize,
    /// Pages recomputed exactly across all checked HLOPs.
    pub sampled_pages: usize,
    /// Element-weighted pre-repair MAPE estimate over all sampled pages.
    pub estimated_mape: f64,
    /// Element-weighted post-repair MAPE over all sampled pages —
    /// repaired partitions contribute zero, so this is ≤ the budget
    /// whenever a repairing guard returned `Ok`. In monitor mode
    /// ([`GuardConfig::monitor`]) nothing is repaired and this is the
    /// measured shipped error, which may exceed the budget.
    pub true_mape: f64,
    /// Exact re-executions performed, in HLOP order.
    pub repairs: Vec<RepairRecord>,
    /// Virtual seconds of exact-device time charged for verification and
    /// repair.
    pub overhead_s: f64,
    /// The budget that was enforced.
    pub budget_mape: f64,
}

impl QualityReport {
    /// The report of a run with the guard disabled.
    pub fn disabled() -> Self {
        QualityReport::default()
    }

    /// Ids of the HLOPs the guard re-executed.
    pub fn repaired_hlops(&self) -> Vec<usize> {
        self.repairs.iter().map(|r| r.hlop).collect()
    }
}

/// The row-band pages of `tile`, `page_rows` rows each (last clipped).
fn pages_of(tile: Tile, page_rows: usize) -> Vec<Tile> {
    let count = tile.rows.div_ceil(page_rows);
    (0..count)
        .map(|p| {
            let row0 = tile.row0 + p * page_rows;
            Tile {
                index: tile.index,
                row0,
                col0: tile.col0,
                rows: page_rows.min(tile.row0 + tile.rows - row0),
                cols: tile.cols,
            }
        })
        .collect()
}

/// Evenly strided sample of `k` of the `pages` (all of them when
/// `k >= pages.len()`): page `⌊j·P/k⌋` for each `j`, which is strictly
/// increasing, so samples never repeat.
fn sample_pages(pages: &[Tile], k: usize) -> Vec<Tile> {
    let n = pages.len();
    let k = k.min(n);
    (0..k).map(|j| pages[j * n / k]).collect()
}

/// The earliest-free alive exact (fp32) device, ties to the lowest index.
fn earliest_exact(timelines: &[DeviceTimeline], alive: &[bool; 3]) -> Option<usize> {
    [GPU, CPU]
        .into_iter()
        .filter(|&d| alive[d])
        .min_by(|&a, &b| {
            timelines[a]
                .free_at()
                .cmp(&timelines[b].free_at())
                .then(a.cmp(&b))
        })
}

/// Runs the guard over a completed run's output.
///
/// `tasks` are the executed compute tasks (tiles plus which path ran
/// them), `output` the aggregated result, `timelines` the per-device
/// virtual timelines (verification is charged here), `alive[d]` whether
/// device `d` is enabled and survived, and `start` the instant all HLOP
/// outputs exist (the run's latest completion). Returns the report and
/// the instant the guard finished — equal to `start` when there was
/// nothing to verify.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_guard(
    config: &GuardConfig,
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    tasks: &[ComputeTask],
    output: &mut Tensor,
    timelines: &mut [DeviceTimeline],
    alive: &[bool; 3],
    start: SimTime,
    sink: &mut dyn TraceSink,
) -> Result<(QualityReport, SimTime)> {
    let budget = config.budget.max_mape;
    let mut report = QualityReport {
        enabled: true,
        budget_mape: budget,
        ..QualityReport::default()
    };
    let mut guard_end = start;

    report.page_verifiable = matches!(kernel.shape().aggregation, Aggregation::Tile);
    let mut approx: Vec<Tile> = tasks.iter().filter(|t| t.npu).map(|t| t.tile).collect();
    report.approx_hlops = approx.len();
    if !report.page_verifiable || approx.is_empty() {
        return Ok((report, guard_end));
    }
    // Tile index == HLOP id; sorting makes verification order (and thus
    // virtual-time charging) independent of scheduling interleavings.
    approx.sort_by_key(|t| t.index);

    if earliest_exact(timelines, alive).is_none() {
        // Approximate output exists but nothing can check or repair it:
        // the budget is unenforceable, which is an error, not a silent
        // pass — the estimate is unbounded because it was never measured.
        return Err(ShmtError::QualityUnattainable {
            estimated_mape: f64::INFINITY,
            budget_mape: budget,
        });
    }

    let work_per_elem = kernel.work_per_element();
    let (rows, cols) = output.shape();
    let mut scratch = Tensor::zeros(rows, cols);
    let (mut est_weighted, mut true_weighted, mut elems_weighed) = (0.0f64, 0.0f64, 0.0f64);

    for tile in approx {
        let pages = sample_pages(&pages_of(tile, config.page_rows), config.pages_per_hlop);
        let verify_elems: usize = pages.iter().map(Tile::len).sum();

        // Charge the page recomputation on the earliest-free exact
        // device; `occupy` advances its busy time without counting a
        // completed HLOP, so scheduler invariants hold.
        let d = earliest_exact(timelines, alive).ok_or_else(|| {
            ShmtError::Internal("exact device set changed during guarding".into())
        })?;
        let verify_begin = timelines[d].free_at().max(start);
        let verify_end = timelines[d].occupy(start, verify_elems as f64 * work_per_elem);
        if sink.enabled() {
            sink.record(
                verify_begin.as_secs(),
                EventKind::GuardVerifyStart {
                    hlop: tile.index,
                    device: d,
                },
            );
            sink.record(
                verify_end.as_secs(),
                EventKind::GuardVerifyEnd {
                    hlop: tile.index,
                    device: d,
                },
            );
        }
        report.overhead_s += verify_end.since(verify_begin);
        guard_end = guard_end.max(verify_end);
        report.checked_hlops += 1;
        report.sampled_pages += pages.len();

        let mut page_weighted = 0.0f64;
        let mut page_elems = 0.0f64;
        for page in &pages {
            kernel.run_exact(inputs, *page, &mut scratch);
            let exact = scratch
                .view(page.row0, page.col0, page.rows, page.cols)
                .to_tensor();
            let got = output
                .view(page.row0, page.col0, page.rows, page.cols)
                .to_tensor();
            let e = mape(&exact, &got);
            page_weighted += e * page.len() as f64;
            page_elems += page.len() as f64;
        }
        let estimate = page_weighted / page_elems;
        est_weighted += page_weighted;
        elems_weighed += page_elems;

        if estimate > budget && config.repair {
            // Repair: re-execute the whole partition exactly and splice
            // the result in. The true pre-repair error over the full tile
            // is a free by-product of the recomputation.
            let rd = earliest_exact(timelines, alive).ok_or_else(|| {
                ShmtError::Internal("exact device set changed during guarding".into())
            })?;
            kernel.run_exact(inputs, tile, &mut scratch);
            let exact_tile = scratch
                .view(tile.row0, tile.col0, tile.rows, tile.cols)
                .to_tensor();
            let got_tile = output
                .view(tile.row0, tile.col0, tile.rows, tile.cols)
                .to_tensor();
            let true_pre = mape(&exact_tile, &got_tile);
            for r in 0..tile.rows {
                let src = &scratch.row(tile.row0 + r)[tile.col0..tile.col0 + tile.cols];
                output.row_mut(tile.row0 + r)[tile.col0..tile.col0 + tile.cols]
                    .copy_from_slice(src);
            }
            let repair_begin = timelines[rd].free_at().max(start);
            let repair_end = timelines[rd].occupy(start, tile.len() as f64 * work_per_elem);
            if sink.enabled() {
                sink.record(
                    repair_begin.as_secs(),
                    EventKind::GuardRepairStart {
                        hlop: tile.index,
                        device: rd,
                    },
                );
                sink.record(
                    repair_end.as_secs(),
                    EventKind::GuardRepairEnd {
                        hlop: tile.index,
                        device: rd,
                    },
                );
            }
            report.overhead_s += repair_end.since(repair_begin);
            guard_end = guard_end.max(repair_end);
            report.repairs.push(RepairRecord {
                hlop: tile.index,
                device: rd,
                estimated_mape: estimate,
                true_mape: true_pre,
            });
            // The repaired partition is now exact: its verified pages
            // contribute zero post-repair error.
        } else {
            // Under budget — or monitor mode, where the measured error
            // ships as-is and is reported instead of fixed.
            true_weighted += page_weighted;
        }
    }

    if elems_weighed > 0.0 {
        report.estimated_mape = est_weighted / elems_weighed;
        report.true_mape = true_weighted / elems_weighed;
    }
    if sink.enabled() {
        sink.counter("guard.checked", report.checked_hlops as f64);
        sink.counter("guard.sampled_pages", report.sampled_pages as f64);
        sink.counter("guard.repaired", report.repairs.len() as f64);
        sink.counter("guard.overhead_s", report.overhead_s);
    }
    Ok((report, guard_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(row0: usize, rows: usize) -> Tile {
        Tile {
            index: 0,
            row0,
            col0: 4,
            rows,
            cols: 12,
        }
    }

    #[test]
    fn pages_cover_the_tile_disjointly() {
        let t = tile(16, 20);
        let pages = pages_of(t, 8);
        assert_eq!(pages.len(), 3);
        assert_eq!(pages.iter().map(Tile::len).sum::<usize>(), t.len());
        assert_eq!(pages[0].row0, 16);
        assert_eq!(pages[2].rows, 4, "last page clips to the tile");
        assert!(pages.iter().all(|p| p.col0 == 4 && p.cols == 12));
    }

    #[test]
    fn sampling_is_strided_and_never_repeats() {
        let pages = pages_of(tile(0, 80), 8);
        assert_eq!(pages.len(), 10);
        let picked = sample_pages(&pages, 3);
        let rows: Vec<usize> = picked.iter().map(|p| p.row0).collect();
        assert_eq!(rows, vec![0, 24, 48]);
        // Oversampling clamps to every page, still unique.
        let all = sample_pages(&pages, 99);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(GuardConfig::default().validate().is_ok(), "disabled is ok");
        let mut c = GuardConfig::enforcing(0.1);
        assert!(c.validate().is_ok());
        c.page_rows = 0;
        assert!(c.validate().is_err());
        let mut c = GuardConfig::enforcing(f64::NAN);
        assert!(c.validate().is_err());
        c.budget.max_mape = -0.5;
        assert!(c.validate().is_err());
    }
}
