//! Randomized tests for the kernel contracts the SHMT runtime depends on:
//!
//! * **Partition independence** — computing a dataset tile by tile, in any
//!   split, yields exactly the full-run output (this is what lets HLOPs
//!   execute on different devices and be stitched back together).
//! * **NPU error physics** — the int8 path's error grows with a
//!   partition's value range and never corrupts elements outside its tile.
//!
//! Cases are drawn from a seeded [`Pcg32`] stream, so every run explores
//! the same inputs and failures reproduce exactly.

use shmt_kernels::{Aggregation, Benchmark, ALL_BENCHMARKS};
use shmt_tensor::rng::Pcg32;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

fn full_tile(rows: usize, cols: usize) -> Tile {
    Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows,
        cols,
    }
}

/// Splits an `n x n` space into four quadrant tiles at an aligned cut.
fn quad_split(n: usize, cut_r: usize, cut_c: usize) -> Vec<Tile> {
    let mut tiles = Vec::new();
    let mut index = 0;
    for (r0, h) in [(0, cut_r), (cut_r, n - cut_r)] {
        for (c0, w) in [(0, cut_c), (cut_c, n - cut_c)] {
            if h > 0 && w > 0 {
                tiles.push(Tile {
                    index,
                    row0: r0,
                    col0: c0,
                    rows: h,
                    cols: w,
                });
                index += 1;
            }
        }
    }
    tiles
}

/// Any quadrant split reproduces the full run bit-for-bit, for every
/// benchmark kernel (FFT excepted: its partitions must span rows, so it
/// is split row-wise).
#[test]
fn tile_splits_match_full_run() {
    let mut rng = Pcg32::seed_from_u64(0xce11);
    for bench in ALL_BENCHMARKS {
        let cut_sel = rng.gen_range(1usize..3);
        let seed = rng.gen_range(0u64..100);
        let n = 96usize;
        let kernel = bench.kernel();
        let shape = kernel.shape();
        let align = shape.block_align.max(1);
        // Aligned interior cut.
        let cut = (n / 3 * cut_sel) / align * align;
        let cut = cut.clamp(align.min(n), n - align.min(n));

        let inputs = bench.generate_inputs(n, n, seed);
        let refs: Vec<&Tensor> = inputs.iter().collect();

        let mut whole = shape.allocate_output(n, n);
        kernel.run_exact(&refs, full_tile(n, n), &mut whole);

        let tiles = if shape.full_rows {
            vec![
                Tile {
                    index: 0,
                    row0: 0,
                    col0: 0,
                    rows: cut,
                    cols: n,
                },
                Tile {
                    index: 1,
                    row0: cut,
                    col0: 0,
                    rows: n - cut,
                    cols: n,
                },
            ]
        } else {
            quad_split(n, cut, cut)
        };
        let mut split = shape.allocate_output(n, n);
        for t in &tiles {
            kernel.run_exact(&refs, *t, &mut split);
        }
        assert_eq!(
            whole.as_slice(),
            split.as_slice(),
            "{bench} cut {cut} seed {seed}"
        );
    }
}

/// The NPU path writes only inside its tile (tile aggregation) and the
/// result stays within the neighborhood of the exact output.
#[test]
fn npu_stays_inside_its_tile() {
    let mut rng = Pcg32::seed_from_u64(0xab42);
    let benches: Vec<Benchmark> = ALL_BENCHMARKS
        .iter()
        .copied()
        .filter(|b| !matches!(b.kernel().shape().aggregation, Aggregation::Reduce { .. }))
        .collect();
    for bench in benches {
        let seed = rng.gen_range(0u64..50);
        let n = 64usize;
        let kernel = bench.kernel();
        let shape = kernel.shape();
        let align = shape.block_align.max(1);
        let half = (n / 2) / align * align;
        let tile = if shape.full_rows {
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: half,
                cols: n,
            }
        } else {
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: half,
                cols: half,
            }
        };

        let inputs = bench.generate_inputs(n, n, seed);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let sentinel = -12345.0f32;
        let mut out = Tensor::filled(n, n, sentinel);
        kernel.run_npu(&refs, tile, &mut out);
        // Everything outside the tile is untouched.
        for r in 0..n {
            for c in 0..n {
                let inside = r >= tile.row0
                    && r < tile.row0 + tile.rows
                    && c >= tile.col0
                    && c < tile.col0 + tile.cols;
                if !inside {
                    assert_eq!(out[(r, c)], sentinel, "{bench} wrote outside at ({r}, {c})");
                }
            }
        }
    }
}

/// Scaling the input range up scales the Blackscholes NPU absolute error
/// up: the quantization-physics property QAWS exploits.
#[test]
fn npu_error_scales_with_range() {
    let mut rng = Pcg32::seed_from_u64(0xb573);
    let bench = Benchmark::Blackscholes;
    let kernel = bench.kernel();
    let n = 32usize;
    let tile = full_tile(n, n);
    let base = Tensor::from_fn(n, n, |r, c| 40.0 + ((r * 13 + c * 7) % 32) as f32 * 0.25);
    let err = |input: &Tensor| {
        let refs = vec![input];
        let mut exact = Tensor::zeros(n, n);
        kernel.run_exact(&refs, tile, &mut exact);
        let mut npu = Tensor::zeros(n, n);
        kernel.run_npu(&refs, tile, &mut npu);
        exact
            .as_slice()
            .iter()
            .zip(npu.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .sum::<f64>()
    };
    let base_err = err(&base);
    for _ in 0..8 {
        let scale = rng.gen_range(4.0f32..64.0);
        let wide = base.map(|v| 40.0 + (v - 40.0) * scale);
        assert!(
            err(&wide) > base_err,
            "wider inputs must hurt more (scale {scale})"
        );
    }
}

#[test]
fn sum_kernels_accumulate_across_tiles() {
    // Histogram's contract: run_exact *adds*, so disjoint tiles compose.
    let b = Benchmark::Histogram;
    let kernel = b.kernel();
    let inputs = b.generate_inputs(64, 64, 9);
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let mut whole = kernel.shape().allocate_output(64, 64);
    kernel.run_exact(&refs, full_tile(64, 64), &mut whole);
    let mut split = kernel.shape().allocate_output(64, 64);
    for t in quad_split(64, 32, 32) {
        kernel.run_exact(&refs, t, &mut split);
    }
    assert_eq!(whole.as_slice(), split.as_slice());
}
