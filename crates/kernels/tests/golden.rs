//! Golden bit-exactness suite.
//!
//! The optimized kernels (interior/halo stencil split, blocked GEMM,
//! hoisted constants, table-driven DCT, scratch-reusing DWT/FFT) promise
//! **bit-identical** outputs to the original naive loops preserved in
//! `shmt_kernels::reference`. This suite enforces that promise with exact
//! `as_slice()` equality — no epsilon — for every benchmark on both the
//! exact and NPU paths, over a full-dataset tile and a multi-tile split
//! that exercises the interior fast path and the clamped halo separately.
//!
//! The dataset shape is deliberately awkward: non-square and not a
//! multiple of the 8/32 block edges, so block kernels hit their clamped
//! partial blocks and stencil tiles end mid-row.

use shmt_kernels::reference::naive_kernel;
use shmt_kernels::{Benchmark, Kernel, KernelShape, ALL_BENCHMARKS};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

/// Awkward default shape: non-square, not a multiple of 8 or 32.
const ROWS: usize = 67;
const COLS: usize = 101;

fn tile(index: usize, row0: usize, col0: usize, rows: usize, cols: usize) -> Tile {
    Tile {
        index,
        row0,
        col0,
        rows,
        cols,
    }
}

/// The dataset shape each benchmark is checked on. The FFT's radix-2 fast
/// path needs power-of-two row length (its fallback is covered by
/// `fft_non_power_of_two_matches_reference`).
fn dims(b: Benchmark) -> (usize, usize) {
    match b {
        Benchmark::Fft => (ROWS, 128),
        _ => (ROWS, COLS),
    }
}

/// A single tile spanning the whole dataset.
fn full_plan(rows: usize, cols: usize) -> Vec<Tile> {
    vec![tile(0, 0, 0, rows, cols)]
}

/// A split plan honoring the kernel's partitioning constraints, chosen so
/// some tiles sit strictly inside the dataset (pure interior path) while
/// others touch every dataset edge (clamped halo path).
fn split_plan(shape: KernelShape, rows: usize, cols: usize) -> Vec<Tile> {
    if shape.full_rows {
        let r1 = rows / 3;
        let r2 = 2 * rows / 3;
        return vec![
            tile(0, 0, 0, r1, cols),
            tile(1, r1, 0, r2 - r1, cols),
            tile(2, r2, 0, rows - r2, cols),
        ];
    }
    let a = shape.block_align;
    let r1 = (rows / 2 / a) * a;
    let c1 = (cols / 2 / a) * a;
    assert!(r1 > 0 && c1 > 0, "split points degenerate for align {a}");
    vec![
        tile(0, 0, 0, r1, c1),
        tile(1, 0, c1, r1, cols - c1),
        tile(2, r1, 0, rows - r1, c1),
        tile(3, r1, c1, rows - r1, cols - c1),
    ]
}

/// Runs `kernel` over `plan` on a fresh output, via the exact or NPU path.
fn run_plan(kernel: &dyn Kernel, inputs: &[&Tensor], plan: &[Tile], npu: bool) -> Tensor {
    let (rows, cols) = inputs[0].shape();
    let mut out = kernel.shape().allocate_output(rows, cols);
    for t in plan {
        if npu {
            kernel.run_npu(inputs, *t, &mut out);
        } else {
            kernel.run_exact(inputs, *t, &mut out);
        }
    }
    kernel.finalize(&mut out);
    out
}

fn check_benchmark(b: Benchmark) {
    let (rows, cols) = dims(b);
    let inputs = b.generate_inputs(rows, cols, 7);
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let optimized = b.kernel();
    let naive = naive_kernel(b);
    let shape = optimized.shape();
    for (label, plan) in [
        ("full", full_plan(rows, cols)),
        ("split", split_plan(shape, rows, cols)),
    ] {
        for npu in [false, true] {
            let got = run_plan(optimized.as_ref(), &refs, &plan, npu);
            let want = run_plan(naive.as_ref(), &refs, &plan, npu);
            let path = if npu { "npu" } else { "exact" };
            assert!(
                got.as_slice() == want.as_slice(),
                "{b:?} {path} {label}: optimized output diverges from naive reference"
            );
        }
    }
}

#[test]
fn all_benchmarks_match_reference_bit_for_bit() {
    for b in ALL_BENCHMARKS {
        check_benchmark(b);
    }
}

#[test]
fn fft_non_power_of_two_matches_reference() {
    let b = Benchmark::Fft;
    let inputs = b.generate_inputs(33, 60, 11);
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let optimized = b.kernel();
    let naive = naive_kernel(b);
    for plan in [full_plan(33, 60), split_plan(optimized.shape(), 33, 60)] {
        let got = run_plan(optimized.as_ref(), &refs, &plan, false);
        let want = run_plan(naive.as_ref(), &refs, &plan, false);
        assert!(got.as_slice() == want.as_slice(), "fft fallback diverges");
    }
}

#[test]
fn conv_matches_reference_bit_for_bit() {
    use shmt_kernels::conv::Conv2d;
    let input = Tensor::from_fn(ROWS, COLS, |r, c| ((r * 31 + c * 17) % 255) as f32);
    let refs = [&input];
    for filter in [Conv2d::gaussian3x3().filter().clone(), {
        // A 5x3 filter exercises asymmetric halos.
        Tensor::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 - 7.0) * 0.125)
    }] {
        let optimized = Conv2d::new(filter.clone());
        let naive = shmt_kernels::reference::conv2d(Conv2d::new(filter));
        for plan in [
            full_plan(ROWS, COLS),
            split_plan(optimized.shape(), ROWS, COLS),
        ] {
            for npu in [false, true] {
                let got = run_plan(&optimized, &refs, &plan, npu);
                let want = run_plan(&naive, &refs, &plan, npu);
                assert!(got.as_slice() == want.as_slice(), "conv diverges");
            }
        }
    }
}

#[test]
fn gemm_matches_reference_bit_for_bit() {
    use shmt_kernels::gemm::Gemm;
    // GEMM is the programming-model VOP (paper Fig 4) rather than a Table 2
    // benchmark, but the blocked k-panel rewrite carries the same
    // bit-exactness contract. Square, non-multiple-of-8 shape.
    let n = ROWS;
    let a = Tensor::from_fn(n, n, |r, c| (((r * 13 + c * 7) % 9) as f32 - 4.0) * 0.25);
    let b = Tensor::from_fn(n, n, |r, c| (((r * 5 + c * 11) % 13) as f32 - 6.0) * 0.5);
    let refs = [&a, &b];
    let optimized = Gemm;
    let naive = shmt_kernels::reference::gemm();
    for plan in [full_plan(n, n), split_plan(optimized.shape(), n, n)] {
        for npu in [false, true] {
            let got = run_plan(&optimized, &refs, &plan, npu);
            let want = run_plan(&naive, &refs, &plan, npu);
            assert!(got.as_slice() == want.as_slice(), "gemm diverges");
        }
    }
}

#[test]
fn interior_only_tile_matches_reference() {
    // A tile strictly inside the dataset: the optimized stencils take the
    // pure interior path for every element except the tile's rim, which
    // still reads neighbors (not clamps). The naive path clamps nothing
    // here either, so equality proves the window arithmetic itself.
    for b in [
        Benchmark::MeanFilter,
        Benchmark::Sobel,
        Benchmark::Laplacian,
        Benchmark::Hotspot,
        Benchmark::Srad,
    ] {
        let inputs = b.generate_inputs(ROWS, COLS, 3);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let optimized = b.kernel();
        let naive = naive_kernel(b);
        let plan = vec![tile(0, 5, 9, 40, 60)];
        let got = run_plan(optimized.as_ref(), &refs, &plan, false);
        let want = run_plan(naive.as_ref(), &refs, &plan, false);
        assert!(got.as_slice() == want.as_slice(), "{b:?} interior tile");
    }
}
