//! 256-bin histogram (OpenCV baseline; the `reduce_hist256` VOP).
//!
//! Each HLOP accumulates a private 1x256 count buffer over its partition;
//! the runtime sums the buffers ([`Aggregation::Reduce`]). Values are binned
//! over the image range `[0, 256)` with clamping.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Aggregation, Kernel, KernelShape, ReduceOp};

/// Number of bins.
pub const BINS: usize = 256;

/// 256-bin histogram reduction kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram256;

impl Kernel for Histogram256 {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn shape(&self) -> KernelShape {
        KernelShape {
            aggregation: Aggregation::Reduce {
                rows: 1,
                cols: BINS,
                op: ReduceOp::Sum,
            },
            ..KernelShape::elementwise()
        }
    }

    /// Accumulates counts for the tile's elements *into* `out` (reduction
    /// kernels add rather than overwrite, so independent HLOP buffers can
    /// be summed by the runtime).
    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        assert_eq!(out.shape(), (1, BINS), "histogram output is 1x256");
        // A fixed-size array reference lets the count update compile
        // without a per-element bounds check.
        let counts: &mut [f32; BINS] = out.row_mut(0).try_into().expect("1x256 output");
        for r in tile.row0..tile.row0 + tile.rows {
            for &v in &input.row(r)[tile.col0..tile.col0 + tile.cols] {
                let bin = (v.clamp(0.0, (BINS - 1) as f32)) as usize;
                counts[bin & (BINS - 1)] += 1.0;
            }
        }
    }

    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        // The NPU histogram regresses the 256 bin counts through an int8
        // output layer: per-HLOP counts are exact in aggregate but each
        // bin is reported on an int8 grid spanning the HLOP's count range.
        let mut local = Tensor::zeros(1, BINS);
        self.run_exact(inputs, tile, &mut local);
        let params = shmt_tensor::quant::QuantParams::from_slice(local.as_slice());
        for (d, &s) in out.row_mut(0).iter_mut().zip(local.row(0)) {
            *d += params.snap(s).max(0.0);
        }
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_elements() {
        let input = Tensor::from_fn(8, 8, |r, c| ((r * 8 + c) % 256) as f32);
        let mut out = Tensor::zeros(1, BINS);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        Histogram256.run_exact(&[&input], tile, &mut out);
        let total: f32 = out.as_slice().iter().sum();
        assert_eq!(total, 64.0);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let input = Tensor::from_vec(1, 4, vec![-5.0, 0.0, 255.0, 999.0]).unwrap();
        let mut out = Tensor::zeros(1, BINS);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 1,
            cols: 4,
        };
        Histogram256.run_exact(&[&input], tile, &mut out);
        assert_eq!(out[(0, 0)], 2.0);
        assert_eq!(out[(0, 255)], 2.0);
    }

    #[test]
    fn partition_sums_match_whole() {
        let input = Tensor::from_fn(16, 16, |r, c| ((r * 37 + c * 11) % 256) as f32);
        let mut whole = Tensor::zeros(1, BINS);
        Histogram256.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 16,
                cols: 16,
            },
            &mut whole,
        );
        let mut parts = Tensor::zeros(1, BINS);
        for (i, r0) in [0usize, 8].iter().enumerate() {
            Histogram256.run_exact(
                &[&input],
                Tile {
                    index: i,
                    row0: *r0,
                    col0: 0,
                    rows: 8,
                    cols: 16,
                },
                &mut parts,
            );
        }
        assert_eq!(whole.as_slice(), parts.as_slice());
    }
}
