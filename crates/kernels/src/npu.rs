//! The Edge TPU / NPU execution path.
//!
//! The paper's Edge TPU HLOPs are pre-trained int8 neural networks that
//! approximate each kernel (§4.2, following the NPU line of work). We model
//! that data path faithfully at the precision level:
//!
//! 1. The runtime casts the HLOP's input partition (plus halo) to int8 with
//!    an affine quantization derived from the partition's own range
//!    (§3.3.2's "data type casting through the desired quantization
//!    method").
//! 2. The device computes the kernel on the dequantized values.
//! 3. The result is emitted through the int8 output grid; a per-kernel
//!    *fidelity* factor (>= 1) coarsens that grid to stand in for the
//!    residual approximation error of the NN itself.
//!
//! Because both grids derive from the *partition's* value range, partitions
//! with wide ranges lose more absolute precision — the property QAWS's
//! criticality sampling (range + standard deviation, §3.5) is designed to
//! detect and route away from the NPU.

use shmt_tensor::quant::QuantParams;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Aggregation, Kernel};

/// How the NPU's int8 output grid is organized.
///
/// Edge TPU models use *per-channel* quantization where a layer's channels
/// have very different dynamic ranges; our transform kernels exploit the
/// same freedom: a DCT model quantizes each of the 64 coefficient
/// positions on its own grid (the DC term would otherwise drown the AC
/// terms), and a DWT model quantizes each subband separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputQuant {
    /// One grid derived from the whole output tile's range.
    PerTile,
    /// One grid per position within an `edge x edge` block (DCT8x8).
    BlockChannels {
        /// Block edge (8 for DCT8x8).
        edge: usize,
    },
    /// One grid per quadrant subband of an `edge x edge` block (DWT).
    Subbands {
        /// Block edge (32 for the blocked DWT).
        edge: usize,
    },
}

/// Runs `kernel` on `tile` through the modeled NPU path, writing the
/// degraded result into `out`.
///
/// `fidelity` coarsens the output grid: `1.0` is pure int8; larger values
/// model an NN whose approximation error exceeds a quantization step.
///
/// # Panics
///
/// Panics if `inputs` does not match the kernel's arity, if the tile is out
/// of bounds, or if `fidelity < 1.0`.
pub fn run_via_npu<K: Kernel + ?Sized>(
    kernel: &K,
    inputs: &[&Tensor],
    tile: Tile,
    out: &mut Tensor,
    fidelity: f32,
) {
    run_via_npu_quant(kernel, inputs, tile, out, fidelity, OutputQuant::PerTile);
}

/// [`run_via_npu`] with an explicit output-grid organization.
///
/// # Panics
///
/// As [`run_via_npu`].
pub fn run_via_npu_quant<K: Kernel + ?Sized>(
    kernel: &K,
    inputs: &[&Tensor],
    tile: Tile,
    out: &mut Tensor,
    fidelity: f32,
    quant: OutputQuant,
) {
    assert!(fidelity >= 1.0, "fidelity must be >= 1.0, got {fidelity}");
    let shape = kernel.shape();
    assert_eq!(
        inputs.len(),
        shape.num_inputs,
        "kernel {} arity",
        kernel.name()
    );
    let (rows, cols) = inputs[0].shape();

    // Extract the partition plus halo, aligned down to the block edge so
    // block transforms keep their phase, spanning full rows if required.
    let ext = extended_region(
        tile,
        shape.halo,
        shape.block_align,
        shape.full_rows,
        rows,
        cols,
    );

    // Quantize-snap each input region: this is the int8 device buffer.
    // Kernels with native uint8 models take integer 8-bit image data
    // losslessly; everything else goes through the affine int8 cast. The
    // extraction is fused with the range scan — each transferred page is
    // touched once for both the copy and the cast-parameter derivation,
    // then once more for the snap itself (the old path did copy, then a
    // full min/max pass, then a second range scan inside `from_slice`).
    let native_u8 = kernel.npu_native_u8();
    assert!(inputs.len() <= MAX_ARITY, "kernel arity above MAX_ARITY");
    let mut snapped: [Option<Tensor>; MAX_ARITY] = [None, None, None, None];
    for (slot, t) in snapped.iter_mut().zip(inputs) {
        let view = t.view(ext.row0, ext.col0, ext.rows, ext.cols);
        let (mut local, range) = view.to_tensor_with_min_max();
        // `None` means every element was NaN; `min_max` reports (0, 0)
        // there, and `from_slice` falls back to the unit range.
        let (lo, hi) = range.unwrap_or((0.0, 0.0));
        if native_u8 && lo >= 0.0 && hi <= 255.0 {
            local.map_inplace(|v| v.round());
        } else {
            let params = match range {
                Some((lo, hi)) => QuantParams::from_range(lo, hi),
                None => QuantParams::from_range(0.0, 1.0),
            };
            params.snap_slice(local.as_mut_slice());
        }
        *slot = Some(local);
    }
    let mut snapped_refs: [&Tensor; MAX_ARITY] = [inputs[0]; MAX_ARITY];
    for (r, s) in snapped_refs.iter_mut().zip(&snapped) {
        if let Some(s) = s {
            *r = s;
        }
    }
    let snapped_refs = &snapped_refs[..inputs.len()];

    // Run the exact kernel on the snapped local data.
    let local_tile = Tile {
        index: tile.index,
        row0: tile.row0 - ext.row0,
        col0: tile.col0 - ext.col0,
        rows: tile.rows,
        cols: tile.cols,
    };
    match shape.aggregation {
        Aggregation::Tile => {
            let mut local_out = Tensor::zeros(ext.rows, ext.cols);
            kernel.run_exact(snapped_refs, local_tile, &mut local_out);
            // Re-quantize the produced tile through the (possibly coarsened)
            // int8 output grid *while publishing* it to the global output:
            // each produced value is read once and the snapped result goes
            // straight to its final location, instead of an in-place snap
            // pass followed by a copy pass. The snap arithmetic is the
            // same, so the output is bit-identical to the two-pass form.
            match quant {
                OutputQuant::PerTile => {
                    publish_snapped_tile(&local_out, local_tile, tile, out, fidelity);
                }
                OutputQuant::BlockChannels { edge } => publish_snapped_channels(
                    &local_out,
                    local_tile,
                    tile,
                    out,
                    fidelity,
                    |r, c| (r % edge) * edge + c % edge,
                    edge * edge,
                ),
                OutputQuant::Subbands { edge } => publish_snapped_channels(
                    &local_out,
                    local_tile,
                    tile,
                    out,
                    fidelity,
                    |r, c| {
                        let half = edge / 2;
                        usize::from(r % edge >= half) * 2 + usize::from(c % edge >= half)
                    },
                    4,
                ),
            }
        }
        Aggregation::Reduce {
            rows: srows,
            cols: scols,
            op,
        } => {
            // Reduction kernels accumulate into the shared buffer; partial
            // buffers fold with the reduction's own operation.
            let shape2 = kernel.shape();
            let mut local_out = shape2.allocate_output(srows, scols);
            kernel.run_exact(snapped_refs, local_tile, &mut local_out);
            for r in 0..srows {
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(local_out.row(r)) {
                    *d = op.combine(*d, *s);
                }
            }
        }
    }
}

/// Maximum kernel arity the NPU path supports (enough for every paper
/// benchmark); lets the snapped input buffers live in fixed stack arrays.
const MAX_ARITY: usize = 4;

/// The tile expanded by its halo, aligned and clamped; `(row0, col0)` is the
/// region origin in dataset coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First dataset row of the region.
    pub row0: usize,
    /// First dataset column of the region.
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

/// Expands `tile` by `halo`, aligns it down to `block_align`, optionally
/// widens it to full rows, and clamps it to the `rows x cols` dataset.
///
/// This is the exact input footprint a (non-`global_inputs`) kernel may
/// read while computing `tile`; executors use it to hand workers tile-local
/// extracts instead of whole tensors.
///
/// # Panics
///
/// Panics if the tile exceeds the dataset bounds.
pub fn extended_region(
    tile: Tile,
    halo: usize,
    block_align: usize,
    full_rows: bool,
    rows: usize,
    cols: usize,
) -> Region {
    assert!(
        tile.row0 + tile.rows <= rows && tile.col0 + tile.cols <= cols,
        "tile out of dataset bounds"
    );
    let align_down = |v: usize| (v / block_align) * block_align;
    let row0 = align_down(tile.row0.saturating_sub(halo));
    let row_end = (tile.row0 + tile.rows + halo).min(rows);
    let (col0, col_end) = if full_rows {
        (0, cols)
    } else {
        (
            align_down(tile.col0.saturating_sub(halo)),
            (tile.col0 + tile.cols + halo).min(cols),
        )
    };
    Region {
        row0,
        col0,
        rows: row_end - row0,
        cols: col_end - col0,
    }
}

/// Most channels any output-grid organization uses (DCT8x8's 64 block
/// positions); lets per-channel ranges and grids live on the stack.
const MAX_CHANNELS: usize = 64;

/// Snaps the `local_tile` region of `local` per channel and writes the
/// result into the `tile` region of `out` in one pass. Each channel id
/// gets its own int8 grid derived from that channel's observed range
/// within the tile. Channel ids are computed from *local* coordinates,
/// which share the global block phase because the extraction region is
/// block-aligned.
fn publish_snapped_channels(
    local: &Tensor,
    local_tile: Tile,
    tile: Tile,
    out: &mut Tensor,
    fidelity: f32,
    channel_of: impl Fn(usize, usize) -> usize,
    channels: usize,
) {
    assert!(channels <= MAX_CHANNELS, "too many quantization channels");
    let mut lo = [f32::INFINITY; MAX_CHANNELS];
    let mut hi = [f32::NEG_INFINITY; MAX_CHANNELS];
    for r in local_tile.row0..local_tile.row0 + local_tile.rows {
        let row = &local.row(r)[local_tile.col0..local_tile.col0 + local_tile.cols];
        for (j, &v) in row.iter().enumerate() {
            let ch = channel_of(r, local_tile.col0 + j);
            lo[ch] = lo[ch].min(v);
            hi[ch] = hi[ch].max(v);
        }
    }
    let mut params = [QuantParams::from_range(0.0, 1.0); MAX_CHANNELS];
    for (ch, p) in params.iter_mut().take(channels).enumerate() {
        if lo[ch] <= hi[ch] {
            let mid = 0.5 * (lo[ch] + hi[ch]);
            let half = 0.5 * (hi[ch] - lo[ch]) * fidelity;
            *p = QuantParams::from_range(mid - half, mid + half);
        }
    }
    for r in 0..tile.rows {
        let lr = local_tile.row0 + r;
        let src = &local.row(lr)[local_tile.col0..local_tile.col0 + tile.cols];
        let dst = &mut out.row_mut(tile.row0 + r)[tile.col0..tile.col0 + tile.cols];
        for (j, (d, s)) in dst.iter_mut().zip(src).enumerate() {
            let ch = channel_of(lr, local_tile.col0 + j);
            *d = params[ch].snap(*s);
        }
    }
}

/// Snaps the `local_tile` region of `local` to an int8 grid derived from
/// that region's range (step coarsened by `fidelity`) and writes the
/// result into the `tile` region of `out` in one pass.
fn publish_snapped_tile(
    local: &Tensor,
    local_tile: Tile,
    tile: Tile,
    out: &mut Tensor,
    fidelity: f32,
) {
    let view = local.view(
        local_tile.row0,
        local_tile.col0,
        local_tile.rows,
        local_tile.cols,
    );
    let (lo, hi) = view.min_max();
    // Coarsen by pretending the range is `fidelity` times wider.
    let mid = 0.5 * (lo + hi);
    let half = 0.5 * (hi - lo) * fidelity;
    let params = QuantParams::from_range(mid - half, mid + half);
    for r in 0..tile.rows {
        let src = &local.row(local_tile.row0 + r)[local_tile.col0..local_tile.col0 + tile.cols];
        let dst = &mut out.row_mut(tile.row0 + r)[tile.col0..tile.col0 + tile.cols];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = params.snap(*s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn extended_region_clamps_at_edges() {
        let t = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 4,
            cols: 4,
        };
        let r = extended_region(t, 2, 1, false, 16, 16);
        assert_eq!((r.row0, r.col0, r.rows, r.cols), (0, 0, 6, 6));
    }

    #[test]
    fn extended_region_aligns_to_blocks() {
        let t = Tile {
            index: 0,
            row0: 8,
            col0: 16,
            rows: 8,
            cols: 8,
        };
        let r = extended_region(t, 0, 8, false, 64, 64);
        assert_eq!((r.row0, r.col0), (8, 16));
        let t2 = Tile {
            index: 0,
            row0: 9,
            col0: 17,
            rows: 7,
            cols: 7,
        };
        let r2 = extended_region(t2, 1, 8, false, 64, 64);
        assert_eq!(r2.row0 % 8, 0);
        assert_eq!(r2.col0 % 8, 0);
    }

    #[test]
    fn extended_region_full_rows_spans_width() {
        let t = Tile {
            index: 0,
            row0: 4,
            col0: 8,
            rows: 2,
            cols: 8,
        };
        let r = extended_region(t, 0, 1, true, 16, 32);
        assert_eq!((r.col0, r.cols), (0, 32));
    }

    #[test]
    fn npu_output_close_but_not_exact() {
        let bench = Benchmark::Sobel;
        let kernel = bench.kernel();
        let inputs = bench.generate_inputs(64, 64, 3);
        let refs: Vec<_> = inputs.iter().collect();
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 64,
            cols: 64,
        };

        let mut exact = Tensor::zeros(64, 64);
        kernel.run_exact(&refs, tile, &mut exact);
        let mut npu = Tensor::zeros(64, 64);
        kernel.run_npu(&refs, tile, &mut npu);

        let (lo, hi) = exact.min_max();
        let range = hi - lo;
        let mut max_err = 0.0f32;
        let mut any_diff = false;
        for (a, b) in exact.as_slice().iter().zip(npu.as_slice()) {
            let e = (a - b).abs();
            max_err = max_err.max(e);
            any_diff |= e > 0.0;
        }
        assert!(any_diff, "NPU path should differ from exact");
        assert!(
            max_err < 0.2 * range,
            "NPU error should be bounded: {max_err} vs range {range}"
        );
    }

    #[test]
    fn npu_wide_range_partition_has_larger_absolute_error() {
        // Two synthetic partitions: one narrow, one wide. The wide one must
        // show larger absolute error after the NPU path — the mechanism
        // QAWS depends on.
        let bench = Benchmark::MeanFilter;
        let kernel = bench.kernel();
        let narrow = Tensor::from_fn(32, 32, |r, c| 100.0 + ((r * 31 + c * 17) % 10) as f32 * 0.1);
        let wide = Tensor::from_fn(32, 32, |r, c| ((r * 31 + c * 17) % 100) as f32 * 25.0);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 32,
            cols: 32,
        };

        let mean_abs_err = |input: &Tensor| {
            let refs = vec![input];
            let mut exact = Tensor::zeros(32, 32);
            kernel.run_exact(&refs, tile, &mut exact);
            let mut npu = Tensor::zeros(32, 32);
            kernel.run_npu(&refs, tile, &mut npu);
            exact
                .as_slice()
                .iter()
                .zip(npu.as_slice())
                .map(|(a, b)| (a - b).abs() as f64)
                .sum::<f64>()
                / 1024.0
        };
        assert!(mean_abs_err(&wide) > 10.0 * mean_abs_err(&narrow));
    }

    /// The pre-fusion NPU pipeline, kept verbatim as the reference the
    /// fused path must match bit-for-bit: separate copy / min-max /
    /// parameter passes on the way in, and an in-place snap followed by
    /// a copy pass on the way out.
    fn two_pass_reference<K: Kernel + ?Sized>(
        kernel: &K,
        inputs: &[&Tensor],
        tile: Tile,
        out: &mut Tensor,
        fidelity: f32,
        quant: OutputQuant,
    ) {
        let shape = kernel.shape();
        let (rows, cols) = inputs[0].shape();
        let ext = extended_region(
            tile,
            shape.halo,
            shape.block_align,
            shape.full_rows,
            rows,
            cols,
        );
        let native_u8 = kernel.npu_native_u8();
        let snapped: Vec<Tensor> = inputs
            .iter()
            .map(|t| {
                let view = t.view(ext.row0, ext.col0, ext.rows, ext.cols);
                let mut local = view.to_tensor();
                let (lo, hi) = local.min_max();
                if native_u8 && lo >= 0.0 && hi <= 255.0 {
                    local.map_inplace(|v| v.round());
                } else {
                    let params = QuantParams::from_slice(local.as_slice());
                    params.snap_slice(local.as_mut_slice());
                }
                local
            })
            .collect();
        let snapped_refs: Vec<&Tensor> = snapped.iter().collect();
        let local_tile = Tile {
            index: tile.index,
            row0: tile.row0 - ext.row0,
            col0: tile.col0 - ext.col0,
            rows: tile.rows,
            cols: tile.cols,
        };
        match shape.aggregation {
            Aggregation::Tile => {
                let mut local_out = Tensor::zeros(ext.rows, ext.cols);
                kernel.run_exact(&snapped_refs, local_tile, &mut local_out);
                let snap_channels =
                    |t: &mut Tensor, channel_of: &dyn Fn(usize, usize) -> usize, channels| {
                        let mut lo = vec![f32::INFINITY; channels];
                        let mut hi = vec![f32::NEG_INFINITY; channels];
                        for r in local_tile.row0..local_tile.row0 + local_tile.rows {
                            for c in local_tile.col0..local_tile.col0 + local_tile.cols {
                                let ch = channel_of(r, c);
                                let v = t[(r, c)];
                                lo[ch] = lo[ch].min(v);
                                hi[ch] = hi[ch].max(v);
                            }
                        }
                        let params: Vec<QuantParams> = (0..channels)
                            .map(|ch| {
                                if lo[ch] > hi[ch] {
                                    QuantParams::from_range(0.0, 1.0)
                                } else {
                                    let mid = 0.5 * (lo[ch] + hi[ch]);
                                    let half = 0.5 * (hi[ch] - lo[ch]) * fidelity;
                                    QuantParams::from_range(mid - half, mid + half)
                                }
                            })
                            .collect();
                        for r in local_tile.row0..local_tile.row0 + local_tile.rows {
                            for c in local_tile.col0..local_tile.col0 + local_tile.cols {
                                let ch = channel_of(r, c);
                                t[(r, c)] = params[ch].snap(t[(r, c)]);
                            }
                        }
                    };
                match quant {
                    OutputQuant::PerTile => {
                        let view = local_out.view(
                            local_tile.row0,
                            local_tile.col0,
                            local_tile.rows,
                            local_tile.cols,
                        );
                        let (lo, hi) = view.min_max();
                        let mid = 0.5 * (lo + hi);
                        let half = 0.5 * (hi - lo) * fidelity;
                        let params = QuantParams::from_range(mid - half, mid + half);
                        for r in local_tile.row0..local_tile.row0 + local_tile.rows {
                            let start = local_tile.col0;
                            params.snap_slice(
                                &mut local_out.row_mut(r)[start..start + local_tile.cols],
                            );
                        }
                    }
                    OutputQuant::BlockChannels { edge } => snap_channels(
                        &mut local_out,
                        &|r, c| (r % edge) * edge + c % edge,
                        edge * edge,
                    ),
                    OutputQuant::Subbands { edge } => snap_channels(
                        &mut local_out,
                        &|r, c| {
                            let half = edge / 2;
                            usize::from(r % edge >= half) * 2 + usize::from(c % edge >= half)
                        },
                        4,
                    ),
                }
                for r in 0..tile.rows {
                    let src = local_out.view(local_tile.row0 + r, local_tile.col0, 1, tile.cols);
                    out.try_view_mut(tile.row0 + r, tile.col0, 1, tile.cols)
                        .unwrap()
                        .copy_from(&src)
                        .unwrap();
                }
            }
            Aggregation::Reduce {
                rows: srows,
                cols: scols,
                op,
            } => {
                let mut local_out = kernel.shape().allocate_output(srows, scols);
                kernel.run_exact(&snapped_refs, local_tile, &mut local_out);
                for r in 0..srows {
                    let dst = out.row_mut(r);
                    for (d, s) in dst.iter_mut().zip(local_out.row(r)) {
                        *d = op.combine(*d, *s);
                    }
                }
            }
        }
    }

    #[test]
    fn fused_path_bit_identical_to_two_pass_reference() {
        // An off-origin tile (halo + block alignment in play) on every
        // output-grid organization, plus a reduction kernel for the
        // input-side fusion alone. Exact equality, not tolerance.
        let cases = [
            (Benchmark::Sobel, OutputQuant::PerTile, 1.8),
            (
                Benchmark::Dct8x8,
                OutputQuant::BlockChannels { edge: 8 },
                1.0,
            ),
            (Benchmark::Dwt, OutputQuant::Subbands { edge: 32 }, 2.5),
            (Benchmark::Histogram, OutputQuant::PerTile, 1.0),
        ];
        for (bench, quant, fidelity) in cases {
            let kernel = bench.kernel();
            let inputs = bench.generate_inputs(96, 96, 11);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let shape = kernel.shape();
            let tile = Tile {
                index: 0,
                row0: 32,
                col0: 0,
                rows: 33,
                cols: 96,
            };
            let (or, oc) = match shape.aggregation {
                Aggregation::Tile => (96, 96),
                Aggregation::Reduce { rows, cols, .. } => (rows, cols),
            };
            let mut fused = shape.allocate_output(or, oc);
            run_via_npu_quant(kernel.as_ref(), &refs, tile, &mut fused, fidelity, quant);
            let mut reference = shape.allocate_output(or, oc);
            two_pass_reference(
                kernel.as_ref(),
                &refs,
                tile,
                &mut reference,
                fidelity,
                quant,
            );
            assert_eq!(
                fused.as_slice(),
                reference.as_slice(),
                "{bench:?} fused output must be bit-identical"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn rejects_sub_unit_fidelity() {
        let bench = Benchmark::Sobel;
        let kernel = bench.kernel();
        let inputs = bench.generate_inputs(16, 16, 1);
        let refs: Vec<_> = inputs.iter().collect();
        let mut out = Tensor::zeros(16, 16);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 16,
            cols: 16,
        };
        run_via_npu(kernel.as_ref(), &refs, tile, &mut out, 0.5);
    }
}
