//! Blocked one-level CDF 9/7 discrete wavelet transform (the FDWT97 VOP).
//!
//! The Rodinia DWT baseline computes the Cohen–Daubechies–Feauveau 9/7
//! transform used by JPEG 2000. Here it is applied per 32x32 block (JPEG
//! 2000 "tiles"), which makes blocks independent and lets SHMT partition
//! the dataset without inter-partition dependencies; tiles must align to
//! the 32-element block edge.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// Block edge of the transform.
pub const BLOCK: usize = 32;

const ALPHA: f32 = -1.586_134_3;
const BETA: f32 = -0.052_980_118;
const GAMMA: f32 = 0.882_911_1;
const DELTA: f32 = 0.443_506_85;
const ZETA: f32 = 1.149_604_4;

/// Blocked CDF 9/7 forward transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dwt97 {
    _private: (),
}

fn mirror(i: isize, n: isize) -> usize {
    // Symmetric (whole-sample) extension: -1 -> 1, n -> n-2.
    let mut i = i;
    if i < 0 {
        i = -i;
    }
    if i >= n {
        i = 2 * n - 2 - i;
    }
    i.clamp(0, n - 1) as usize
}

/// One level of the 9/7 lifting scheme in place, then deinterleaved so the
/// approximation (low-pass) coefficients occupy the first half.
///
/// Works for any length >= 2; length-1 signals pass through unchanged.
pub fn forward_lift97(x: &mut [f32]) {
    let mut scratch = vec![0.0f32; x.len()];
    forward_lift97_with(x, &mut scratch);
}

/// [`forward_lift97`] writing its deinterleave pass through a caller-owned
/// scratch buffer (`scratch.len() >= x.len()`), so the blocked transform
/// does not allocate per row and column.
fn forward_lift97_with(x: &mut [f32], scratch: &mut [f32]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let ni = n as isize;
    let lift = |x: &mut [f32], first: usize, coef: f32| {
        for i in (first..n).step_by(2) {
            let l = x[mirror(i as isize - 1, ni)];
            let r = x[mirror(i as isize + 1, ni)];
            x[i] += coef * (l + r);
        }
    };
    lift(x, 1, ALPHA);
    lift(x, 0, BETA);
    lift(x, 1, GAMMA);
    lift(x, 0, DELTA);
    for (i, v) in x.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v *= ZETA;
        } else {
            *v /= ZETA;
        }
    }
    // Deinterleave: evens (approx) first, odds (detail) second.
    let scratch = &mut scratch[..n];
    scratch.copy_from_slice(x);
    let half = n.div_ceil(2);
    for (v, s) in x[..half].iter_mut().zip(scratch.iter().step_by(2)) {
        *v = *s;
    }
    for (v, s) in x[half..].iter_mut().zip(scratch.iter().skip(1).step_by(2)) {
        *v = *s;
    }
}

/// Inverse of [`forward_lift97`], for round-trip verification.
pub fn inverse_lift97(x: &mut [f32]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let ni = n as isize;
    // Re-interleave.
    let half = n.div_ceil(2);
    let approx = x[..half].to_vec();
    let detail = x[half..].to_vec();
    for (i, v) in approx.iter().enumerate() {
        x[2 * i] = *v;
    }
    for (i, v) in detail.iter().enumerate() {
        x[2 * i + 1] = *v;
    }
    for (i, v) in x.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v /= ZETA;
        } else {
            *v *= ZETA;
        }
    }
    let unlift = |x: &mut [f32], first: usize, coef: f32| {
        for i in (first..n).step_by(2) {
            let l = x[mirror(i as isize - 1, ni)];
            let r = x[mirror(i as isize + 1, ni)];
            x[i] -= coef * (l + r);
        }
    };
    unlift(x, 0, DELTA);
    unlift(x, 1, GAMMA);
    unlift(x, 0, BETA);
    unlift(x, 1, ALPHA);
}

/// Reusable buffers for [`transform_block`], sized for one `BLOCK x BLOCK`
/// block so a whole-tile run performs no per-block allocations.
struct Scratch {
    block: Vec<f32>,
    col: Vec<f32>,
    lift: Vec<f32>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            block: vec![0.0; BLOCK * BLOCK],
            col: vec![0.0; BLOCK],
            lift: vec![0.0; BLOCK],
        }
    }
}

/// Transforms one block anchored at `(br, bc)`, writing coordinates inside
/// `tile` only.
fn transform_block(
    input: &Tensor,
    br: usize,
    bc: usize,
    tile: Tile,
    out: &mut Tensor,
    s: &mut Scratch,
) {
    let (rows, cols) = input.shape();
    let brows = BLOCK.min(rows - br);
    let bcols = BLOCK.min(cols - bc);
    // Copy the block into a flat row-major buffer, lifting each row as it
    // lands; then run the column pass through the strided gather buffer.
    let block = &mut s.block[..brows * bcols];
    for (r, chunk) in block.chunks_exact_mut(bcols).enumerate() {
        chunk.copy_from_slice(&input.row(br + r)[bc..bc + bcols]);
        forward_lift97_with(chunk, &mut s.lift);
    }
    let col_buf = &mut s.col[..brows];
    for c in 0..bcols {
        for (buf, chunk) in col_buf.iter_mut().zip(block.chunks_exact(bcols)) {
            *buf = chunk[c];
        }
        forward_lift97_with(col_buf, &mut s.lift);
        for (buf, chunk) in col_buf.iter().zip(block.chunks_exact_mut(bcols)) {
            chunk[c] = *buf;
        }
    }
    // Publish the rows that intersect the tile with slice copies.
    let lo = tile.col0.max(bc);
    let hi = (tile.col0 + tile.cols).min(bc + bcols);
    if lo >= hi {
        return;
    }
    for (r, chunk) in block.chunks_exact(bcols).enumerate() {
        let or = br + r;
        if or < tile.row0 || or >= tile.row0 + tile.rows {
            continue;
        }
        out.row_mut(or)[lo..hi].copy_from_slice(&chunk[lo - bc..hi - bc]);
    }
}

impl Kernel for Dwt97 {
    fn name(&self) -> &'static str {
        "DWT"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::blocked(BLOCK)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let mut scratch = Scratch::new();
        let br0 = (tile.row0 / BLOCK) * BLOCK;
        let bc0 = (tile.col0 / BLOCK) * BLOCK;
        let mut br = br0;
        while br < tile.row0 + tile.rows {
            let mut bc = bc0;
            while bc < tile.col0 + tile.cols {
                transform_block(input, br, bc, tile, out, &mut scratch);
                bc += BLOCK;
            }
            br += BLOCK;
        }
    }

    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        // Per-subband quantization: the LL approximation band and the
        // detail bands have very different dynamic ranges (JPEG 2000
        // treats them separately for the same reason).
        crate::npu::run_via_npu_quant(
            self,
            inputs,
            tile,
            out,
            self.npu_fidelity(),
            crate::npu::OutputQuant::Subbands { edge: BLOCK },
        );
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        // Four lifting passes in each direction plus scaling.
        18.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_round_trips() {
        let orig: Vec<f32> = (0..32).map(|i| ((i * 7 + 3) % 13) as f32 - 6.0).collect();
        let mut x = orig.clone();
        forward_lift97(&mut x);
        inverse_lift97(&mut x);
        for (a, b) in orig.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn lift_round_trips_odd_length() {
        let orig: Vec<f32> = (0..15).map(|i| (i as f32).sin()).collect();
        let mut x = orig.clone();
        forward_lift97(&mut x);
        inverse_lift97(&mut x);
        for (a, b) in orig.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_signal_has_no_detail() {
        let mut x = vec![5.0f32; 32];
        forward_lift97(&mut x);
        for &d in &x[16..] {
            assert!(d.abs() < 1e-4, "detail = {d}");
        }
        // The 9/7 low-pass DC gain is sqrt(2).
        for &a in &x[..16] {
            assert!(
                (a - 5.0 * std::f32::consts::SQRT_2).abs() < 1e-3,
                "approx = {a}"
            );
        }
    }

    #[test]
    fn tile_split_matches_full_run() {
        let input = Tensor::from_fn(64, 64, |r, c| ((r * 3 + c * 5) % 29) as f32);
        let full_tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 64,
            cols: 64,
        };
        let mut full = Tensor::zeros(64, 64);
        Dwt97::default().run_exact(&[&input], full_tile, &mut full);

        let mut split = Tensor::zeros(64, 64);
        for (i, r0) in [0usize, 32].iter().enumerate() {
            let t = Tile {
                index: i,
                row0: *r0,
                col0: 0,
                rows: 32,
                cols: 64,
            };
            Dwt97::default().run_exact(&[&input], t, &mut split);
        }
        assert_eq!(full.as_slice(), split.as_slice());
    }

    #[test]
    fn length_one_signal_passes_through() {
        let mut x = vec![3.0f32];
        forward_lift97(&mut x);
        assert_eq!(x, vec![3.0]);
    }
}
