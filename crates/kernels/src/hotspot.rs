//! Hotspot thermal simulation stencil (Rodinia baseline; the
//! `parabolic_PDE` VOP).
//!
//! One explicit time step of the Rodinia thermal model: the new temperature
//! of a cell depends on its neighbors (a 5-point stencil), the power
//! dissipated in the cell, and the ambient sink. Inputs: temperature grid
//! and power grid.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// One explicit Hotspot time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Thermal capacitance scaling of the explicit step.
    pub step: f32,
    /// Lateral thermal resistance (x direction).
    pub rx: f32,
    /// Lateral thermal resistance (y direction).
    pub ry: f32,
    /// Vertical resistance to the ambient sink.
    pub rz: f32,
    /// Ambient temperature.
    pub ambient: f32,
}

impl Default for Hotspot {
    fn default() -> Self {
        Hotspot {
            step: 0.1,
            rx: 1.0,
            ry: 1.0,
            rz: 4.0,
            ambient: 300.0,
        }
    }
}

impl Kernel for Hotspot {
    fn name(&self) -> &'static str {
        "Hotspot"
    }

    fn shape(&self) -> KernelShape {
        KernelShape {
            num_inputs: 2,
            ..KernelShape::stencil(1)
        }
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let temp = inputs[0];
        let power = inputs[1];
        assert_eq!(
            temp.shape(),
            power.shape(),
            "temperature and power grids must match"
        );
        let (rows, cols) = temp.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            temp[(r, c)]
        };
        let interior = crate::stencil::interior(tile, 1, 1, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let (ri, ci) = (r as isize, c as isize);
            let t = temp[(r, c)];
            let delta = power[(r, c)]
                + (at(ri - 1, ci) + at(ri + 1, ci) - 2.0 * t) / self.ry
                + (at(ri, ci - 1) + at(ri, ci + 1) - 2.0 * t) / self.rx
                + (self.ambient - t) / self.rz;
            out[(r, c)] = t + self.step * delta;
        });
        let Some(i) = interior else { return };
        for r in i.r0..i.r1 {
            let up = &temp.row(r - 1)[i.c0 - 1..i.c1 + 1];
            let mid = &temp.row(r)[i.c0 - 1..i.c1 + 1];
            let dn = &temp.row(r + 1)[i.c0 - 1..i.c1 + 1];
            let pw = &power.row(r)[i.c0..i.c1];
            let dst = &mut out.row_mut(r)[i.c0..i.c1];
            for ((((d, &p), u), m), l) in dst
                .iter_mut()
                .zip(pw)
                .zip(up.windows(3))
                .zip(mid.windows(3))
                .zip(dn.windows(3))
            {
                // Same term order as the clamped path.
                let t = m[1];
                let delta = p
                    + (u[1] + l[1] - 2.0 * t) / self.ry
                    + (m[0] + m[2] - 2.0 * t) / self.rx
                    + (self.ambient - t) / self.rz;
                *d = t + self.step * delta;
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // The NN approximates the PDE update itself, not just the values;
        // its residual error spans several int8 steps.
        8.0
    }

    fn work_per_element(&self) -> f64 {
        14.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_tile(n: usize) -> Tile {
        Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: n,
            cols: n,
        }
    }

    #[test]
    fn equilibrium_at_ambient_with_no_power() {
        let k = Hotspot::default();
        let temp = Tensor::filled(8, 8, k.ambient);
        let power = Tensor::zeros(8, 8);
        let mut out = Tensor::zeros(8, 8);
        k.run_exact(&[&temp, &power], full_tile(8), &mut out);
        for &v in out.as_slice() {
            assert!((v - k.ambient).abs() < 1e-3);
        }
    }

    #[test]
    fn powered_cell_heats_up() {
        let k = Hotspot::default();
        let temp = Tensor::filled(8, 8, k.ambient);
        let mut power = Tensor::zeros(8, 8);
        power[(4, 4)] = 10.0;
        let mut out = Tensor::zeros(8, 8);
        k.run_exact(&[&temp, &power], full_tile(8), &mut out);
        assert!(out[(4, 4)] > k.ambient);
        assert!((out[(0, 0)] - k.ambient).abs() < 1e-3);
    }

    #[test]
    fn hot_cell_diffuses_to_neighbors() {
        let k = Hotspot::default();
        let mut temp = Tensor::filled(8, 8, 300.0);
        temp[(4, 4)] = 400.0;
        let power = Tensor::zeros(8, 8);
        let mut out = Tensor::zeros(8, 8);
        k.run_exact(&[&temp, &power], full_tile(8), &mut out);
        assert!(out[(4, 4)] < 400.0, "hot cell cools");
        assert!(out[(4, 3)] > 300.0, "neighbor warms");
        assert!(out[(4, 5)] > 300.0);
    }

    #[test]
    fn tile_split_matches_full_run() {
        let temp = Tensor::from_fn(16, 16, |r, c| 300.0 + ((r * 7 + c * 3) % 40) as f32);
        let power = Tensor::from_fn(16, 16, |r, c| ((r + c) % 3) as f32 * 0.5);
        let k = Hotspot::default();
        let mut full = Tensor::zeros(16, 16);
        k.run_exact(&[&temp, &power], full_tile(16), &mut full);
        let mut split = Tensor::zeros(16, 16);
        for (i, c0) in [0usize, 8].iter().enumerate() {
            let t = Tile {
                index: i,
                row0: 0,
                col0: *c0,
                rows: 16,
                cols: 8,
            };
            k.run_exact(&[&temp, &power], t, &mut split);
        }
        assert_eq!(full.as_slice(), split.as_slice());
    }
}
