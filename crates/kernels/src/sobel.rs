//! Sobel gradient-magnitude filter (OpenCV baseline).
//!
//! The standard 3x3 Sobel operator; the output is the Euclidean gradient
//! magnitude `sqrt(gx^2 + gy^2)` with clamped boundaries. Like Laplacian,
//! flat image regions produce near-zero outputs.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// 3x3 Sobel gradient magnitude kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sobel;

impl Kernel for Sobel {
    fn name(&self) -> &'static str {
        "Sobel"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::stencil(1)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            input[(r, c)]
        };
        let interior = crate::stencil::interior(tile, 1, 1, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let (ri, ci) = (r as isize, c as isize);
            let gx = at(ri - 1, ci + 1) + 2.0 * at(ri, ci + 1) + at(ri + 1, ci + 1)
                - at(ri - 1, ci - 1)
                - 2.0 * at(ri, ci - 1)
                - at(ri + 1, ci - 1);
            let gy = at(ri + 1, ci - 1) + 2.0 * at(ri + 1, ci) + at(ri + 1, ci + 1)
                - at(ri - 1, ci - 1)
                - 2.0 * at(ri - 1, ci)
                - at(ri - 1, ci + 1);
            out[(r, c)] = (gx * gx + gy * gy).sqrt();
        });
        let Some(i) = interior else { return };
        for r in i.r0..i.r1 {
            let up = &input.row(r - 1)[i.c0 - 1..i.c1 + 1];
            let mid = &input.row(r)[i.c0 - 1..i.c1 + 1];
            let dn = &input.row(r + 1)[i.c0 - 1..i.c1 + 1];
            let dst = &mut out.row_mut(r)[i.c0..i.c1];
            for (((d, u), m), l) in dst
                .iter_mut()
                .zip(up.windows(3))
                .zip(mid.windows(3))
                .zip(dn.windows(3))
            {
                // Identical term order to the clamped path above.
                let gx = u[2] + 2.0 * m[2] + l[2] - u[0] - 2.0 * m[0] - l[0];
                let gy = l[0] + 2.0 * l[1] + l[2] - u[0] - 2.0 * u[1] - u[2];
                *d = (gx * gx + gy * gy).sqrt();
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // As with Laplacian, near-zero edge maps amplify relative error
        // (paper Fig 7: 45.5% TPU MAPE).
        5.0
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_gives_zero() {
        let input = Tensor::filled(8, 8, 50.0);
        let mut out = Tensor::filled(8, 8, -1.0);
        Sobel.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        assert!(out.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn vertical_edge_detected() {
        let input = Tensor::from_fn(8, 8, |_, c| if c < 4 { 0.0 } else { 100.0 });
        let mut out = Tensor::zeros(8, 8);
        Sobel.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        // Strong response at the edge columns, zero far from the edge.
        assert!(out[(4, 3)] > 100.0);
        assert!(out[(4, 4)] > 100.0);
        assert!(out[(4, 0)].abs() < 1e-5);
        assert!(out[(4, 7)].abs() < 1e-5);
    }

    #[test]
    fn output_is_nonnegative() {
        let input = Tensor::from_fn(8, 8, |r, c| ((r * 31 + c * 7) % 19) as f32 - 9.0);
        let mut out = Tensor::zeros(8, 8);
        Sobel.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }
}
