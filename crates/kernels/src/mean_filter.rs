//! 3x3 mean (box) filter (OpenCV baseline; the `Mean_Filter` VOP).

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// 3x3 box filter kernel with clamped boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanFilter;

impl Kernel for MeanFilter {
    fn name(&self) -> &'static str {
        "MF"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::stencil(1)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            input[(r, c)]
        };
        let interior = crate::stencil::interior(tile, 1, 1, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let (ri, ci) = (r as isize, c as isize);
            let mut acc = 0.0f32;
            for dr in -1..=1 {
                for dc in -1..=1 {
                    acc += at(ri + dr, ci + dc);
                }
            }
            out[(r, c)] = acc / 9.0;
        });
        let Some(i) = interior else { return };
        for r in i.r0..i.r1 {
            let up = &input.row(r - 1)[i.c0 - 1..i.c1 + 1];
            let mid = &input.row(r)[i.c0 - 1..i.c1 + 1];
            let dn = &input.row(r + 1)[i.c0 - 1..i.c1 + 1];
            let dst = &mut out.row_mut(r)[i.c0..i.c1];
            for (((d, u), m), l) in dst
                .iter_mut()
                .zip(up.windows(3))
                .zip(mid.windows(3))
                .zip(dn.windows(3))
            {
                // Same accumulation order as the clamped path: top row,
                // middle row, bottom row, left to right.
                *d = (u[0] + u[1] + u[2] + m[0] + m[1] + m[2] + l[0] + l[1] + l[2]) / 9.0;
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        5.0
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_is_fixed_point() {
        let input = Tensor::filled(8, 8, 7.0);
        let mut out = Tensor::zeros(8, 8);
        MeanFilter.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        for &v in out.as_slice() {
            assert!((v - 7.0).abs() < 1e-5);
        }
    }

    #[test]
    fn point_source_spreads_to_nine_cells() {
        let mut input = Tensor::zeros(5, 5);
        input[(2, 2)] = 9.0;
        let mut out = Tensor::zeros(5, 5);
        MeanFilter.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 5,
                cols: 5,
            },
            &mut out,
        );
        for r in 1..=3 {
            for c in 1..=3 {
                assert!((out[(r, c)] - 1.0).abs() < 1e-5);
            }
        }
        assert_eq!(out[(0, 0)], 0.0);
    }

    #[test]
    fn output_is_bounded_by_input_range() {
        let input = Tensor::from_fn(8, 8, |r, c| ((r * 17 + c * 29) % 97) as f32);
        let mut out = Tensor::zeros(8, 8);
        MeanFilter.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        let (ilo, ihi) = input.min_max();
        let (olo, ohi) = out.min_max();
        assert!(olo >= ilo && ohi <= ihi);
    }
}
