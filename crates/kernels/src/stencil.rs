//! Interior/halo tile splitting for stencil hot loops.
//!
//! Every stencil kernel splits its output tile into an *interior*
//! rectangle — cells whose full stencil window lies inside the dataset, so
//! rows can be processed as contiguous slices with no clamping or
//! per-element bounds checks — and a thin *halo* of remaining cells that
//! still runs through the original clamped per-cell path. The split only
//! changes how cells are addressed, never the per-cell arithmetic, so
//! outputs stay bit-identical to the naive loops (see the golden suite in
//! `tests/golden.rs` and the contract in DESIGN.md).
//!
//! The interior row loops (`windows(3)` zips over adjacent row slices,
//! `iter_mut().zip` saxpy in GEMM) are deliberately written in the slice
//! idioms LLVM's autovectorizer handles best — measured ~2x faster than
//! hand-blocked fixed-width lanes, which defeat the vectorizer's own
//! unrolling. `scripts/check_simd.sh` proves the vectorization actually
//! fires by requiring packed float ops (`mulps`/`addps`/`sqrtps`) in the
//! release assembly; it runs as a CI gate on x86_64.

use shmt_tensor::tile::Tile;

/// The subrectangle of a tile whose stencil windows stay fully in bounds:
/// rows `r0..r1`, columns `c0..c1` (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interior {
    pub r0: usize,
    pub r1: usize,
    pub c0: usize,
    pub c1: usize,
}

/// Intersects `tile` with the dataset's interior band for a stencil that
/// reads `hr` rows and `hc` columns beyond each cell. Returns `None` when
/// the intersection is empty (tiny tiles or tiles hugging the edge).
pub(crate) fn interior(
    tile: Tile,
    hr: usize,
    hc: usize,
    rows: usize,
    cols: usize,
) -> Option<Interior> {
    let r0 = tile.row0.max(hr);
    let r1 = (tile.row0 + tile.rows).min(rows.saturating_sub(hr));
    let c0 = tile.col0.max(hc);
    let c1 = (tile.col0 + tile.cols).min(cols.saturating_sub(hc));
    if r0 < r1 && c0 < c1 {
        Some(Interior { r0, r1, c0, c1 })
    } else {
        None
    }
}

/// Calls `f` for every tile cell *outside* the interior rectangle — the
/// halo cells that need the clamped slow path. With `interior == None` the
/// whole tile is halo.
pub(crate) fn for_each_halo(
    tile: Tile,
    interior: Option<Interior>,
    mut f: impl FnMut(usize, usize),
) {
    let (row_end, col_end) = (tile.row0 + tile.rows, tile.col0 + tile.cols);
    for r in tile.row0..row_end {
        match interior {
            Some(i) if r >= i.r0 && r < i.r1 => {
                for c in tile.col0..i.c0 {
                    f(r, c);
                }
                for c in i.c1..col_end {
                    f(r, c);
                }
            }
            _ => {
                for c in tile.col0..col_end {
                    f(r, c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(row0: usize, col0: usize, rows: usize, cols: usize) -> Tile {
        Tile {
            index: 0,
            row0,
            col0,
            rows,
            cols,
        }
    }

    #[test]
    fn full_tile_interior_shrinks_by_halo() {
        let i = interior(tile(0, 0, 16, 16), 1, 1, 16, 16).unwrap();
        assert_eq!((i.r0, i.r1, i.c0, i.c1), (1, 15, 1, 15));
    }

    #[test]
    fn centered_tile_is_all_interior() {
        let i = interior(tile(4, 4, 8, 8), 2, 2, 16, 16).unwrap();
        assert_eq!((i.r0, i.r1, i.c0, i.c1), (4, 12, 4, 12));
        let mut halo_cells = 0;
        for_each_halo(tile(4, 4, 8, 8), Some(i), |_, _| halo_cells += 1);
        assert_eq!(halo_cells, 0);
    }

    #[test]
    fn tiny_dataset_is_all_halo() {
        assert!(interior(tile(0, 0, 3, 3), 2, 2, 3, 3).is_none());
        let mut cells = Vec::new();
        for_each_halo(tile(0, 0, 3, 3), None, |r, c| cells.push((r, c)));
        assert_eq!(cells.len(), 9);
    }

    #[test]
    fn halo_plus_interior_covers_tile_exactly_once() {
        let t = tile(0, 3, 13, 10);
        let i = interior(t, 1, 1, 13, 16);
        let mut count = vec![0u8; 13 * 16];
        if let Some(i) = i {
            for r in i.r0..i.r1 {
                for c in i.c0..i.c1 {
                    count[r * 16 + c] += 1;
                }
            }
        }
        for_each_halo(t, i, |r, c| count[r * 16 + c] += 1);
        for r in 0..13 {
            for c in 0..16 {
                let inside = (3..13).contains(&c);
                assert_eq!(count[r * 16 + c], u8::from(inside), "({r},{c})");
            }
        }
    }
}
