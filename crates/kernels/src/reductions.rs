//! Whole-dataset reduction VOPs from Table 1: `reduce_sum`,
//! `reduce_average`, `reduce_max`, `reduce_min`.
//!
//! Each HLOP reduces its partition into a tiny private buffer; the runtime
//! folds the buffers with the reduction's operation. `reduce_average`
//! carries `(sum, count)` partials and divides in [`Kernel::finalize`].

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Aggregation, Kernel, KernelShape, ReduceOp};

fn reduce_shape(cols: usize, op: ReduceOp) -> KernelShape {
    KernelShape {
        aggregation: Aggregation::Reduce { rows: 1, cols, op },
        ..KernelShape::elementwise()
    }
}

fn fold_tile(input: &Tensor, tile: Tile, init: f32, f: impl Fn(f32, f32) -> f32) -> f32 {
    let mut acc = init;
    for r in tile.row0..tile.row0 + tile.rows {
        for &v in &input.row(r)[tile.col0..tile.col0 + tile.cols] {
            acc = f(acc, v);
        }
    }
    acc
}

/// `reduce_sum`: the output buffer is `1x1` holding the dataset sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceSum;

impl Kernel for ReduceSum {
    fn name(&self) -> &'static str {
        "reduce_sum"
    }

    fn shape(&self) -> KernelShape {
        reduce_shape(1, ReduceOp::Sum)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        out[(0, 0)] += fold_tile(inputs[0], tile, 0.0, |a, v| a + v);
    }

    fn work_per_element(&self) -> f64 {
        1.0
    }
}

/// `reduce_max`: the output buffer is `1x1` holding the dataset maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceMax;

impl Kernel for ReduceMax {
    fn name(&self) -> &'static str {
        "reduce_max"
    }

    fn shape(&self) -> KernelShape {
        reduce_shape(1, ReduceOp::Max)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let m = fold_tile(inputs[0], tile, f32::NEG_INFINITY, f32::max);
        out[(0, 0)] = out[(0, 0)].max(m);
    }

    fn work_per_element(&self) -> f64 {
        1.0
    }
}

/// `reduce_min`: the output buffer is `1x1` holding the dataset minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceMin;

impl Kernel for ReduceMin {
    fn name(&self) -> &'static str {
        "reduce_min"
    }

    fn shape(&self) -> KernelShape {
        reduce_shape(1, ReduceOp::Min)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let m = fold_tile(inputs[0], tile, f32::INFINITY, f32::min);
        out[(0, 0)] = out[(0, 0)].min(m);
    }

    fn work_per_element(&self) -> f64 {
        1.0
    }
}

/// `reduce_average`: partials are `(sum, count)` pairs; [`Kernel::finalize`]
/// turns the pair into `(average, count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceAverage;

impl Kernel for ReduceAverage {
    fn name(&self) -> &'static str {
        "reduce_average"
    }

    fn shape(&self) -> KernelShape {
        reduce_shape(2, ReduceOp::Sum)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        out[(0, 0)] += fold_tile(inputs[0], tile, 0.0, |a, v| a + v);
        out[(0, 1)] += tile.len() as f32;
    }

    fn finalize(&self, out: &mut Tensor) {
        let count = out[(0, 1)];
        if count > 0.0 {
            out[(0, 0)] /= count;
        }
    }

    fn work_per_element(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        Tensor::from_fn(8, 8, |r, c| (r * 8 + c) as f32)
    }

    fn run_partitioned(kernel: &dyn Kernel) -> Tensor {
        let t = input();
        let shape = kernel.shape();
        let mut out = shape.allocate_output(8, 8);
        for (i, r0) in [0usize, 4].iter().enumerate() {
            let tile = Tile {
                index: i,
                row0: *r0,
                col0: 0,
                rows: 4,
                cols: 8,
            };
            kernel.run_exact(&[&t], tile, &mut out);
        }
        kernel.finalize(&mut out);
        out
    }

    #[test]
    fn sum_matches_arithmetic_series() {
        let out = run_partitioned(&ReduceSum);
        assert_eq!(out[(0, 0)], (63 * 64 / 2) as f32);
    }

    #[test]
    fn max_and_min_find_extremes() {
        assert_eq!(run_partitioned(&ReduceMax)[(0, 0)], 63.0);
        assert_eq!(run_partitioned(&ReduceMin)[(0, 0)], 0.0);
    }

    #[test]
    fn average_divides_by_count() {
        let out = run_partitioned(&ReduceAverage);
        assert_eq!(out[(0, 0)], 31.5);
        assert_eq!(out[(0, 1)], 64.0);
    }

    #[test]
    fn reduce_identities_compose() {
        // Folding an identity-initialized buffer with partials must equal
        // the direct reduction.
        assert_eq!(ReduceOp::Max.combine(ReduceOp::Max.identity(), -5.0), -5.0);
        assert_eq!(ReduceOp::Min.combine(ReduceOp::Min.identity(), 5.0), 5.0);
        assert_eq!(ReduceOp::Sum.combine(ReduceOp::Sum.identity(), 5.0), 5.0);
    }

    #[test]
    fn npu_path_reduces_approximately() {
        let t = input();
        let kernel = ReduceSum;
        let mut out = kernel.shape().allocate_output(8, 8);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        kernel.run_npu(&[&t], tile, &mut out);
        let exact = (63 * 64 / 2) as f32;
        assert!(
            (out[(0, 0)] - exact).abs() < 0.02 * exact,
            "{}",
            out[(0, 0)]
        );
    }
}
