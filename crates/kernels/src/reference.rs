//! Naive reference implementations of every benchmark kernel.
//!
//! The optimized kernels split tiles into an interior fast path and a
//! clamped halo, block loops for cache, and hoist invariants — all under
//! the contract that outputs stay **bit-identical** to the original
//! straight-line loops. This module keeps those original loops alive as
//! golden references: [`Naive`] wraps a production kernel and swaps in the
//! naive `run_exact` while delegating every other trait method (shape,
//! fidelity, native-u8 flag, NPU wiring, work estimate) to the wrapped
//! kernel, so the NPU path also exercises the naive exact core.
//!
//! The `tests/golden.rs` suite asserts exact `as_slice()` equality between
//! each production kernel and its reference on both the exact and NPU
//! paths; `perf_report` benches the Mean Filter and Sobel references to
//! quantify the interior/halo speedup.

use shmt_tensor::quant::QuantParams;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::blackscholes::{cnd, Blackscholes};
use crate::conv::Conv2d;
use crate::dct8x8::{basis, Dct8x8};
use crate::dwt::{forward_lift97, Dwt97, BLOCK};
use crate::fft::{fft_magnitude, RowFft};
use crate::gemm::Gemm;
use crate::histogram::{Histogram256, BINS};
use crate::hotspot::Hotspot;
use crate::laplacian::Laplacian;
use crate::mean_filter::MeanFilter;
use crate::npu::OutputQuant;
use crate::sobel::Sobel;
use crate::srad::Srad;
use crate::{Benchmark, Kernel, KernelShape};

/// The signature of a naive kernel core: same arguments as
/// [`Kernel::run_exact`], with the wrapped kernel passed explicitly.
type NaiveRun<K> = fn(&K, &[&Tensor], Tile, &mut Tensor);

/// A reference kernel: the production kernel `K` with its `run_exact`
/// replaced by the original naive loop (and, where the production kernel
/// customizes `run_npu`, an equivalent override that routes through the
/// naive exact core).
#[derive(Debug)]
pub struct Naive<K: Kernel> {
    inner: K,
    run: NaiveRun<K>,
    /// Output quantization for the default NPU routing; `None` = the
    /// trait-default `PerTile` scheme.
    quant: Option<OutputQuant>,
    /// Fully custom NPU path (Histogram's per-HLOP snap, GEMM's global
    /// operand quantization) — mirrors the production override but calls
    /// the naive exact core.
    custom_npu: Option<NaiveRun<Naive<K>>>,
}

impl<K: Kernel> Kernel for Naive<K> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn shape(&self) -> KernelShape {
        self.inner.shape()
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        (self.run)(&self.inner, inputs, tile, out)
    }

    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        if let Some(f) = self.custom_npu {
            f(self, inputs, tile, out);
        } else {
            crate::npu::run_via_npu_quant(
                self,
                inputs,
                tile,
                out,
                self.npu_fidelity(),
                self.quant.unwrap_or(OutputQuant::PerTile),
            );
        }
    }

    fn npu_fidelity(&self) -> f32 {
        self.inner.npu_fidelity()
    }

    fn npu_native_u8(&self) -> bool {
        self.inner.npu_native_u8()
    }

    fn finalize(&self, out: &mut Tensor) {
        self.inner.finalize(out);
    }

    fn work_per_element(&self) -> f64 {
        self.inner.work_per_element()
    }
}

/// The naive reference for a benchmark, mirroring [`Benchmark::kernel`].
pub fn naive_kernel(benchmark: Benchmark) -> Box<dyn Kernel> {
    match benchmark {
        Benchmark::Blackscholes => Box::new(blackscholes()),
        Benchmark::Dct8x8 => Box::new(dct8x8()),
        Benchmark::Dwt => Box::new(dwt97()),
        Benchmark::Fft => Box::new(row_fft()),
        Benchmark::Histogram => Box::new(histogram256()),
        Benchmark::Hotspot => Box::new(hotspot(Hotspot::default())),
        Benchmark::Laplacian => Box::new(laplacian()),
        Benchmark::MeanFilter => Box::new(mean_filter()),
        Benchmark::Sobel => Box::new(sobel()),
        Benchmark::Srad => Box::new(srad(Srad::default())),
    }
}

/// Clamped read used by every naive stencil loop.
fn clamped(input: &Tensor, r: isize, c: isize) -> f32 {
    let (rows, cols) = input.shape();
    let r = r.clamp(0, rows as isize - 1) as usize;
    let c = c.clamp(0, cols as isize - 1) as usize;
    input[(r, c)]
}

/// Naive 3x3 mean filter reference.
pub fn mean_filter() -> Naive<MeanFilter> {
    fn run(_: &MeanFilter, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let (ri, ci) = (r as isize, c as isize);
                let mut acc = 0.0f32;
                for dr in -1..=1 {
                    for dc in -1..=1 {
                        acc += clamped(input, ri + dr, ci + dc);
                    }
                }
                out[(r, c)] = acc / 9.0;
            }
        }
    }
    Naive {
        inner: MeanFilter,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive Sobel gradient-magnitude reference.
pub fn sobel() -> Naive<Sobel> {
    fn run(_: &Sobel, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let at = |r, c| clamped(input, r, c);
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let (ri, ci) = (r as isize, c as isize);
                let gx = at(ri - 1, ci + 1) + 2.0 * at(ri, ci + 1) + at(ri + 1, ci + 1)
                    - at(ri - 1, ci - 1)
                    - 2.0 * at(ri, ci - 1)
                    - at(ri + 1, ci - 1);
                let gy = at(ri + 1, ci - 1) + 2.0 * at(ri + 1, ci) + at(ri + 1, ci + 1)
                    - at(ri - 1, ci - 1)
                    - 2.0 * at(ri - 1, ci)
                    - at(ri - 1, ci + 1);
                out[(r, c)] = (gx * gx + gy * gy).sqrt();
            }
        }
    }
    Naive {
        inner: Sobel,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive 3x3 Laplacian reference.
pub fn laplacian() -> Naive<Laplacian> {
    fn run(_: &Laplacian, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let at = |r, c| clamped(input, r, c);
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let (ri, ci) = (r as isize, c as isize);
                out[(r, c)] = at(ri - 1, ci) + at(ri + 1, ci) + at(ri, ci - 1) + at(ri, ci + 1)
                    - 4.0 * input[(r, c)];
            }
        }
    }
    Naive {
        inner: Laplacian,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive Hotspot time-step reference.
pub fn hotspot(k: Hotspot) -> Naive<Hotspot> {
    fn run(k: &Hotspot, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let temp = inputs[0];
        let power = inputs[1];
        assert_eq!(
            temp.shape(),
            power.shape(),
            "temperature and power grids must match"
        );
        let at = |r, c| clamped(temp, r, c);
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let (ri, ci) = (r as isize, c as isize);
                let t = temp[(r, c)];
                let delta = power[(r, c)]
                    + (at(ri - 1, ci) + at(ri + 1, ci) - 2.0 * t) / k.ry
                    + (at(ri, ci - 1) + at(ri, ci + 1) - 2.0 * t) / k.rx
                    + (k.ambient - t) / k.rz;
                out[(r, c)] = t + k.step * delta;
            }
        }
    }
    Naive {
        inner: k,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive SRAD diffusion coefficient from the clamped 4-neighborhood.
fn srad_coefficient(k: &Srad, input: &Tensor, r: isize, c: isize) -> f32 {
    let j = clamped(input, r, c).max(1e-6);
    let dn = clamped(input, r - 1, c) - j;
    let ds = clamped(input, r + 1, c) - j;
    let dw = clamped(input, r, c - 1) - j;
    let de = clamped(input, r, c + 1) - j;
    let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j * j);
    let l = (dn + ds + dw + de) / j;
    let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
    let den = (1.0 + 0.25 * l) * (1.0 + 0.25 * l);
    let q2 = (num / den.max(1e-6)).max(0.0);
    let q02 = k.q0 * k.q0;
    let c = 1.0 / (1.0 + (q2 - q02) / (q02 * (1.0 + q02)));
    c.clamp(0.0, 1.0)
}

/// Naive SRAD iteration reference.
pub fn srad(k: Srad) -> Naive<Srad> {
    fn run(k: &Srad, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let at = |r, c| clamped(input, r, c);
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let (ri, ci) = (r as isize, c as isize);
                let j = input[(r, c)];
                let cc = srad_coefficient(k, input, ri, ci);
                let cs = srad_coefficient(k, input, ri + 1, ci);
                let ce = srad_coefficient(k, input, ri, ci + 1);
                let d = cc * (at(ri - 1, ci) - j)
                    + cs * (at(ri + 1, ci) - j)
                    + cc * (at(ri, ci - 1) - j)
                    + ce * (at(ri, ci + 1) - j);
                out[(r, c)] = j + 0.25 * k.lambda * d;
            }
        }
    }
    Naive {
        inner: k,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive same-size convolution reference (clamped boundaries).
pub fn conv2d(k: Conv2d) -> Naive<Conv2d> {
    fn run(k: &Conv2d, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let filter = k.filter();
        let (fr, fc) = filter.shape();
        let (hr, hc) = ((fr / 2) as isize, (fc / 2) as isize);
        for r in tile.row0..tile.row0 + tile.rows {
            for c in tile.col0..tile.col0 + tile.cols {
                let mut acc = 0.0f32;
                for i in 0..fr {
                    for j in 0..fc {
                        let rr =
                            (r as isize + i as isize - hr).clamp(0, rows as isize - 1) as usize;
                        let cc =
                            (c as isize + j as isize - hc).clamp(0, cols as isize - 1) as usize;
                        acc += input[(rr, cc)] * filter[(i, j)];
                    }
                }
                out[(r, c)] = acc;
            }
        }
    }
    Naive {
        inner: k,
        run,
        quant: None,
        custom_npu: None,
    }
}

const N8: usize = 8;

/// Naive 8x8 DCT reference: per-coefficient basis evaluation with clamped
/// per-term reads, exactly as the seed implementation.
pub fn dct8x8() -> Naive<Dct8x8> {
    fn block(input: &Tensor, br: usize, bc: usize, tile: Tile, out: &mut Tensor) {
        let (rows, cols) = input.shape();
        let read = |r: usize, c: usize| -> f32 { input[(r.min(rows - 1), c.min(cols - 1))] };
        for u in 0..N8 {
            let or = br + u;
            if or < tile.row0 || or >= tile.row0 + tile.rows || or >= rows {
                continue;
            }
            for v in 0..N8 {
                let oc = bc + v;
                if oc < tile.col0 || oc >= tile.col0 + tile.cols || oc >= cols {
                    continue;
                }
                let mut acc = 0.0f32;
                for x in 0..N8 {
                    let bu = basis(u, x);
                    for y in 0..N8 {
                        acc += read(br + x, bc + y) * bu * basis(v, y);
                    }
                }
                out[(or, oc)] = acc;
            }
        }
    }
    fn run(_: &Dct8x8, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let br0 = (tile.row0 / N8) * N8;
        let bc0 = (tile.col0 / N8) * N8;
        let mut br = br0;
        while br < tile.row0 + tile.rows {
            let mut bc = bc0;
            while bc < tile.col0 + tile.cols {
                block(input, br, bc, tile, out);
                bc += N8;
            }
            br += N8;
        }
    }
    Naive {
        inner: Dct8x8,
        run,
        quant: Some(OutputQuant::BlockChannels { edge: N8 }),
        custom_npu: None,
    }
}

/// Naive blocked DWT 9/7 reference: nested-`Vec` block copy, row lifts,
/// strided column lifts through a scratch column.
pub fn dwt97() -> Naive<Dwt97> {
    fn block(input: &Tensor, br: usize, bc: usize, tile: Tile, out: &mut Tensor) {
        let (rows, cols) = input.shape();
        let brows = BLOCK.min(rows - br);
        let bcols = BLOCK.min(cols - bc);
        let mut block: Vec<Vec<f32>> = (0..brows)
            .map(|r| input.row(br + r)[bc..bc + bcols].to_vec())
            .collect();
        for row in &mut block {
            forward_lift97(row);
        }
        let mut col_buf = vec![0.0f32; brows];
        // The column stride crosses rows, so the index form is natural.
        #[allow(clippy::needless_range_loop)]
        for c in 0..bcols {
            for (r, buf) in col_buf.iter_mut().enumerate() {
                *buf = block[r][c];
            }
            forward_lift97(&mut col_buf);
            for (r, buf) in col_buf.iter().enumerate() {
                block[r][c] = *buf;
            }
        }
        for (r, row) in block.iter().enumerate() {
            let or = br + r;
            if or < tile.row0 || or >= tile.row0 + tile.rows {
                continue;
            }
            for (c, &v) in row.iter().enumerate() {
                let oc = bc + c;
                if oc >= tile.col0 && oc < tile.col0 + tile.cols {
                    out[(or, oc)] = v;
                }
            }
        }
    }
    fn run(_: &Dwt97, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let br0 = (tile.row0 / BLOCK) * BLOCK;
        let bc0 = (tile.col0 / BLOCK) * BLOCK;
        let mut br = br0;
        while br < tile.row0 + tile.rows {
            let mut bc = bc0;
            while bc < tile.col0 + tile.cols {
                block(input, br, bc, tile, out);
                bc += BLOCK;
            }
            br += BLOCK;
        }
    }
    Naive {
        inner: Dwt97::default(),
        run,
        quant: Some(OutputQuant::Subbands { edge: BLOCK }),
        custom_npu: None,
    }
}

/// Naive row-FFT reference: fresh scratch per row via [`fft_magnitude`].
pub fn row_fft() -> Naive<RowFft> {
    fn run(_: &RowFft, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        assert_eq!(tile.col0, 0, "FFT partitions must span full rows");
        assert_eq!(
            tile.cols,
            input.cols(),
            "FFT partitions must span full rows"
        );
        for r in tile.row0..tile.row0 + tile.rows {
            let mag = fft_magnitude(input.row(r));
            out.row_mut(r).copy_from_slice(&mag);
        }
    }
    Naive {
        inner: RowFft,
        run,
        quant: None,
        custom_npu: None,
    }
}

/// Naive histogram reference with the production per-HLOP NPU snap.
pub fn histogram256() -> Naive<Histogram256> {
    fn run(_: &Histogram256, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        assert_eq!(out.shape(), (1, BINS), "histogram output is 1x256");
        for r in tile.row0..tile.row0 + tile.rows {
            for &v in &input.row(r)[tile.col0..tile.col0 + tile.cols] {
                let bin = (v.clamp(0.0, (BINS - 1) as f32)) as usize;
                out[(0, bin)] += 1.0;
            }
        }
    }
    fn npu(this: &Naive<Histogram256>, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let mut local = Tensor::zeros(1, BINS);
        this.run_exact(inputs, tile, &mut local);
        let params = QuantParams::from_slice(local.as_slice());
        for (d, &s) in out.row_mut(0).iter_mut().zip(local.row(0)) {
            *d += params.snap(s).max(0.0);
        }
    }
    Naive {
        inner: Histogram256,
        run,
        quant: None,
        custom_npu: Some(npu),
    }
}

/// Naive GEMM reference (unblocked i-k-j) with the production global
/// operand quantization on the NPU path.
pub fn gemm() -> Naive<Gemm> {
    fn run(_: &Gemm, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let (a, b) = (inputs[0], inputs[1]);
        assert_eq!(
            a.shape(),
            b.shape(),
            "GEMM VOP multiplies equal-shaped squares"
        );
        let (n, m) = a.shape();
        assert_eq!(n, m, "GEMM VOP requires square inputs");
        for r in tile.row0..tile.row0 + tile.rows {
            let arow = a.row(r);
            let or = out.row_mut(r);
            let dst = &mut or[tile.col0..tile.col0 + tile.cols];
            dst.fill(0.0);
            for (k, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b.row(k)[tile.col0..tile.col0 + tile.cols];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
    }
    fn npu(this: &Naive<Gemm>, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let qa = QuantParams::from_slice(inputs[0].as_slice());
        let qb = QuantParams::from_slice(inputs[1].as_slice());
        let a = inputs[0].map(|v| qa.snap(v));
        let b = inputs[1].map(|v| qb.snap(v));
        this.run_exact(&[&a, &b], tile, out);
        let view = out.view(tile.row0, tile.col0, tile.rows, tile.cols);
        let (lo, hi) = view.min_max();
        let q = QuantParams::from_range(lo, hi);
        for r in tile.row0..tile.row0 + tile.rows {
            for v in &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols] {
                *v = q.snap(*v);
            }
        }
    }
    Naive {
        inner: Gemm,
        run,
        quant: None,
        custom_npu: Some(npu),
    }
}

/// Naive Black-Scholes reference: the full pricing formula re-evaluated
/// per element, nothing hoisted.
pub fn blackscholes() -> Naive<Blackscholes> {
    fn run(k: &Blackscholes, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        for r in tile.row0..tile.row0 + tile.rows {
            let src = &input.row(r)[tile.col0..tile.col0 + tile.cols];
            let dst = &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols];
            for (d, &spot) in dst.iter_mut().zip(src) {
                let s = spot.max(1e-6);
                let strike = s * k.strike_ratio;
                let sqrt_t = k.expiry.sqrt();
                let d1 = ((s / strike).ln()
                    + (k.rate + 0.5 * k.volatility * k.volatility) * k.expiry)
                    / (k.volatility * sqrt_t);
                let d2 = d1 - k.volatility * sqrt_t;
                *d = s * cnd(d1) - strike * (-k.rate * k.expiry).exp() * cnd(d2);
            }
        }
    }
    Naive {
        inner: Blackscholes::default(),
        run,
        quant: None,
        custom_npu: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_BENCHMARKS;

    #[test]
    fn reference_shapes_match_production() {
        for b in ALL_BENCHMARKS {
            let naive = naive_kernel(b);
            let prod = b.kernel();
            assert_eq!(naive.shape(), prod.shape(), "{b:?}");
            assert_eq!(naive.npu_fidelity(), prod.npu_fidelity(), "{b:?}");
            assert_eq!(naive.npu_native_u8(), prod.npu_native_u8(), "{b:?}");
        }
    }

    #[test]
    fn naive_conv_matches_primitive() {
        let input = Tensor::from_fn(12, 12, |r, c| ((r * 7 + c * 3) % 19) as f32);
        let k = conv2d(Conv2d::gaussian3x3());
        let mut out = Tensor::zeros(12, 12);
        k.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 12,
                cols: 12,
            },
            &mut out,
        );
        let expect = crate::primitives::conv2d(&input, Conv2d::gaussian3x3().filter());
        assert_eq!(out.as_slice(), expect.as_slice());
    }
}
