//! Row-wise fast Fourier transform magnitude (CUDA Examples baseline).
//!
//! Each dataset row is one real signal; the kernel emits the magnitude
//! spectrum of its DFT. Rows are independent, so HLOP partitions are bands
//! of full rows ([`KernelShape::full_rows`]). Power-of-two rows use an
//! iterative radix-2 FFT; other lengths fall back to a naive DFT (only used
//! by small tests).

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// Row-wise FFT magnitude kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowFft;

/// Computes the DFT magnitude of a real signal.
pub fn fft_magnitude(signal: &[f32]) -> Vec<f32> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() && n >= 2 {
        let mut re: Vec<f32> = signal.to_vec();
        let mut im = vec![0.0f32; n];
        fft_radix2(&mut re, &mut im);
        re.iter()
            .zip(&im)
            .map(|(r, i)| (r * r + i * i).sqrt())
            .collect()
    } else {
        naive_dft_magnitude(signal)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_radix2(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT requires power-of-two length"
    );
    assert_eq!(n, im.len(), "real and imaginary parts must match");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos() as f32, ang.sin() as f32);
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f32, 0.0f32);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

fn naive_dft_magnitude(signal: &[f32]) -> Vec<f32> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (t, &x) in signal.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                re += x as f64 * ang.cos();
                im += x as f64 * ang.sin();
            }
            ((re * re + im * im).sqrt()) as f32
        })
        .collect()
}

impl Kernel for RowFft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn shape(&self) -> KernelShape {
        KernelShape {
            full_rows: true,
            ..KernelShape::elementwise()
        }
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        assert_eq!(tile.col0, 0, "FFT partitions must span full rows");
        assert_eq!(
            tile.cols,
            input.cols(),
            "FFT partitions must span full rows"
        );
        let n = input.cols();
        if n.is_power_of_two() && n >= 2 {
            // Reuse one complex scratch pair across all rows and write the
            // magnitudes straight into the output row.
            let mut re = vec![0.0f32; n];
            let mut im = vec![0.0f32; n];
            for r in tile.row0..tile.row0 + tile.rows {
                re.copy_from_slice(input.row(r));
                im.fill(0.0);
                fft_radix2(&mut re, &mut im);
                let dst = out.row_mut(r);
                for ((d, &rr), &ii) in dst.iter_mut().zip(&re).zip(&im) {
                    *d = (rr * rr + ii * ii).sqrt();
                }
            }
        } else {
            for r in tile.row0..tile.row0 + tile.rows {
                let mag = fft_magnitude(input.row(r));
                out.row_mut(r).copy_from_slice(&mag);
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // Spectra have huge dynamic range; the int8 NN model captures the
        // dominant bins but loses the floor (paper Fig 7: ~12% MAPE).
        2.0
    }

    fn work_per_element(&self) -> f64 {
        // ~5 log2(n) flops per element; parameterized at the paper's 8K.
        65.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0f32; 16];
        signal[0] = 1.0;
        let mag = fft_magnitude(&signal);
        for m in mag {
            assert!((m - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 64;
        let signal: Vec<f32> = (0..n)
            .map(|t| (2.0 * std::f32::consts::PI * 4.0 * t as f32 / n as f32).cos())
            .collect();
        let mag = fft_magnitude(&signal);
        assert!((mag[4] - n as f32 / 2.0).abs() < 1e-2, "bin4 = {}", mag[4]);
        assert!(mag[5] < 1e-2);
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let signal: Vec<f32> = (0..32).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let fast = fft_magnitude(&signal);
        let slow = naive_dft_magnitude(&signal);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn non_power_of_two_falls_back() {
        let signal = vec![1.0f32; 12];
        let mag = fft_magnitude(&signal);
        assert!((mag[0] - 12.0).abs() < 1e-3);
        assert!(mag[1].abs() < 1e-3);
    }

    #[test]
    fn kernel_writes_only_tile_rows() {
        let input = Tensor::from_fn(4, 8, |r, c| (r * 8 + c) as f32);
        let mut out = Tensor::zeros(4, 8);
        let tile = Tile {
            index: 0,
            row0: 1,
            col0: 0,
            rows: 2,
            cols: 8,
        };
        RowFft.run_exact(&[&input], tile, &mut out);
        assert!(out.row(0).iter().all(|&v| v == 0.0));
        assert!(out.row(1).iter().any(|&v| v != 0.0));
        assert!(out.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "full rows")]
    fn kernel_rejects_partial_rows() {
        let input = Tensor::zeros(4, 8);
        let mut out = Tensor::zeros(4, 8);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 2,
            cols: 4,
        };
        RowFft.run_exact(&[&input], tile, &mut out);
    }
}
