//! Benchmark kernels for the SHMT reproduction.
//!
//! The paper evaluates SHMT on ten applications (Table 2): Blackscholes,
//! DCT8x8, DWT (9/7), FFT, Histogram, Hotspot, Laplacian, Mean Filter,
//! Sobel, and SRAD. Each kernel here has two device paths:
//!
//! * **exact** — the reference `f32` implementation. This is what the
//!   virtual CPU and GPU devices execute (their silicon computes fp32
//!   exactly; only their *speed* differs, which the platform simulator
//!   models).
//! * **NPU** — the Edge TPU path. The paper runs pre-trained int8 NN
//!   approximations of each kernel on the Edge TPU (§4.2); we model that as
//!   the exact kernel evaluated on inputs snapped to an int8 grid with the
//!   outputs snapped to an int8 grid, optionally coarsened by a per-kernel
//!   fidelity factor representing residual NN-approximation error. The
//!   result is a genuinely computed, genuinely degraded output whose error
//!   grows with the value range of the partition — the exact property
//!   QAWS's criticality sampling exploits (§3.5).
//!
//! Kernels compute one *output tile* at a time given access to the whole
//! input tensor(s); stencil kernels therefore read their halos from the
//! global input with clamped boundaries, matching an HLOP whose input
//! partition includes the halo (§3.3.2).
//!
//! # Examples
//!
//! ```
//! use shmt_kernels::{Benchmark, Kernel};
//! use shmt_tensor::tile::Tile;
//!
//! let bench = Benchmark::Sobel;
//! let kernel = bench.kernel();
//! let inputs = bench.generate_inputs(64, 64, 1);
//! let refs: Vec<_> = inputs.iter().collect();
//! let mut out = kernel.shape().allocate_output(64, 64);
//! let tile = Tile { index: 0, row0: 0, col0: 0, rows: 64, cols: 64 };
//! kernel.run_exact(&refs, tile, &mut out);
//! assert_eq!(out.shape(), (64, 64));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blackscholes;
pub mod conv;
pub mod dct8x8;
pub mod dwt;
pub mod fft;
pub mod gemm;
pub mod histogram;
pub mod hotspot;
mod kernel;
pub mod laplacian;
pub mod mean_filter;
pub mod npu;
pub mod primitives;
pub mod reductions;
pub mod reference;
pub mod sobel;
pub mod srad;
mod stencil;

pub use kernel::{Aggregation, Benchmark, Kernel, KernelShape, ReduceOp, ALL_BENCHMARKS};
