//! 8x8 block discrete cosine transform (CUDA Examples baseline).
//!
//! The classic JPEG-style DCT-II applied independently to each 8x8 block of
//! the image. Blocks are addressed in *dataset* coordinates, so tiles must
//! start on multiples of 8 ([`KernelShape::block_align`]); blocks that
//! straddle the dataset edge are padded by clamping.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

const N: usize = 8;

/// 8x8 blockwise 2-D DCT-II with orthonormal scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dct8x8;

/// DCT basis value `c(u) * cos((2x+1) u pi / 16)`.
pub(crate) fn basis(u: usize, x: usize) -> f32 {
    let cu = if u == 0 {
        (1.0f32 / N as f32).sqrt()
    } else {
        (2.0f32 / N as f32).sqrt()
    };
    cu * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / (2.0 * N as f32)).cos()
}

/// The full `basis(u, x)` table, built once per transform so the hot loop
/// never calls `cos`. Entries are the exact values `basis` returns.
fn basis_table() -> [[f32; N]; N] {
    let mut tbl = [[0.0f32; N]; N];
    for (u, row) in tbl.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = basis(u, x);
        }
    }
    tbl
}

/// Transforms one 8x8 block anchored at `(br, bc)` in dataset coordinates,
/// reading clamped input and writing only coordinates inside `tile`.
fn transform_block(
    input: &Tensor,
    br: usize,
    bc: usize,
    tile: Tile,
    out: &mut Tensor,
    tbl: &[[f32; N]; N],
) {
    let (rows, cols) = input.shape();
    // Gather the (edge-clamped) block once; the coefficient loops then
    // read a flat stack buffer instead of clamping per term.
    let mut blk = [[0.0f32; N]; N];
    for (x, brow) in blk.iter_mut().enumerate() {
        let sr = (br + x).min(rows - 1);
        let src = input.row(sr);
        for (y, v) in brow.iter_mut().enumerate() {
            *v = src[(bc + y).min(cols - 1)];
        }
    }
    for u in 0..N {
        let or = br + u;
        if or < tile.row0 || or >= tile.row0 + tile.rows || or >= rows {
            continue;
        }
        for v in 0..N {
            let oc = bc + v;
            if oc < tile.col0 || oc >= tile.col0 + tile.cols || oc >= cols {
                continue;
            }
            let mut acc = 0.0f32;
            for x in 0..N {
                let bu = tbl[u][x];
                let bv = &tbl[v];
                for y in 0..N {
                    // Same product and sum order as the naive form.
                    acc += blk[x][y] * bu * bv[y];
                }
            }
            out[(or, oc)] = acc;
        }
    }
}

impl Kernel for Dct8x8 {
    fn name(&self) -> &'static str {
        "DCT8x8"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::blocked(N)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let tbl = basis_table();
        let br0 = (tile.row0 / N) * N;
        let bc0 = (tile.col0 / N) * N;
        let mut br = br0;
        while br < tile.row0 + tile.rows {
            let mut bc = bc0;
            while bc < tile.col0 + tile.cols {
                transform_block(input, br, bc, tile, out, &tbl);
                bc += N;
            }
            br += N;
        }
    }

    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        // Edge TPU models quantize per channel; for a DCT model each of
        // the 64 coefficient positions is one channel, so the DC term's
        // huge range does not flatten the near-zero AC terms.
        crate::npu::run_via_npu_quant(
            self,
            inputs,
            tile,
            out,
            self.npu_fidelity(),
            crate::npu::OutputQuant::BlockChannels { edge: N },
        );
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        // 64 multiply-adds per output coefficient.
        128.0
    }
}

/// Inverse 8x8 blockwise DCT, provided for round-trip testing and the image
/// pipeline example.
pub fn idct8x8(coeffs: &Tensor) -> Tensor {
    let (rows, cols) = coeffs.shape();
    let tbl = basis_table();
    let mut out = Tensor::zeros(rows, cols);
    let mut br = 0;
    while br < rows {
        let mut bc = 0;
        while bc < cols {
            for x in 0..N.min(rows - br) {
                for y in 0..N.min(cols - bc) {
                    let mut acc = 0.0f32;
                    for u in 0..N.min(rows - br) {
                        let bu = tbl[u][x];
                        for v in 0..N.min(cols - bc) {
                            acc += coeffs[(br + u, bc + v)] * bu * tbl[v][y];
                        }
                    }
                    out[(br + x, bc + y)] = acc;
                }
            }
            bc += N;
        }
        br += N;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_block_concentrates_in_dc() {
        let input = Tensor::filled(8, 8, 10.0);
        let mut out = Tensor::zeros(8, 8);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        Dct8x8.run_exact(&[&input], tile, &mut out);
        // DC coefficient = 8 * mean = 80 with orthonormal scaling.
        assert!((out[(0, 0)] - 80.0).abs() < 1e-3, "dc = {}", out[(0, 0)]);
        for r in 0..8 {
            for c in 0..8 {
                if (r, c) != (0, 0) {
                    assert!(out[(r, c)].abs() < 1e-3, "ac({r},{c}) = {}", out[(r, c)]);
                }
            }
        }
    }

    #[test]
    fn dct_preserves_energy() {
        let input = Tensor::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f32 - 5.0);
        let mut out = Tensor::zeros(8, 8);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        Dct8x8.run_exact(&[&input], tile, &mut out);
        let e_in: f32 = input.as_slice().iter().map(|v| v * v).sum();
        let e_out: f32 = out.as_slice().iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4, "{e_in} vs {e_out}");
    }

    #[test]
    fn idct_round_trips() {
        let input = Tensor::from_fn(16, 16, |r, c| ((r * 5 + c * 3) % 17) as f32);
        let mut coeffs = Tensor::zeros(16, 16);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 16,
            cols: 16,
        };
        Dct8x8.run_exact(&[&input], tile, &mut coeffs);
        let back = idct8x8(&coeffs);
        for (a, b) in input.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn partial_tile_matches_full_run() {
        let input = Tensor::from_fn(16, 16, |r, c| ((r * 31 + c * 17) % 23) as f32);
        let mut full = Tensor::zeros(16, 16);
        Dct8x8.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 16,
                cols: 16,
            },
            &mut full,
        );
        let mut partial = Tensor::zeros(16, 16);
        Dct8x8.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 8,
                col0: 0,
                rows: 8,
                cols: 16,
            },
            &mut partial,
        );
        for r in 8..16 {
            for c in 0..16 {
                assert_eq!(full[(r, c)], partial[(r, c)]);
            }
        }
        for c in 0..16 {
            assert_eq!(partial[(0, c)], 0.0);
        }
    }
}
