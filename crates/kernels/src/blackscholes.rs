//! Black-Scholes European option pricing (CUDA Examples baseline).
//!
//! Element-wise: each input element is a spot price; the strike, expiry,
//! rate, and volatility are kernel parameters (the CUDA sample draws them
//! from fixed ranges). The output is the call option price.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// Black-Scholes call pricing over a tensor of spot prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blackscholes {
    /// Strike price as a multiple of the spot price.
    pub strike_ratio: f32,
    /// Risk-free rate.
    pub rate: f32,
    /// Volatility.
    pub volatility: f32,
    /// Time to expiry in years.
    pub expiry: f32,
}

impl Default for Blackscholes {
    fn default() -> Self {
        Blackscholes {
            strike_ratio: 1.05,
            rate: 0.02,
            volatility: 0.30,
            expiry: 1.0,
        }
    }
}

/// Spot-independent subexpressions of the pricing formula, computed once
/// per tile instead of once per element. Each field is built by the exact
/// expression the scalar path uses, so hoisting changes no output bit.
struct PriceConsts {
    drift: f32,
    vol_sqrt_t: f32,
    discount: f32,
}

impl Blackscholes {
    /// Prices a single call option at spot `s`.
    pub fn price(&self, s: f32) -> f32 {
        self.price_with(&self.consts(), s)
    }

    fn consts(&self) -> PriceConsts {
        let sqrt_t = self.expiry.sqrt();
        PriceConsts {
            drift: (self.rate + 0.5 * self.volatility * self.volatility) * self.expiry,
            vol_sqrt_t: self.volatility * sqrt_t,
            discount: (-self.rate * self.expiry).exp(),
        }
    }

    fn price_with(&self, pc: &PriceConsts, s: f32) -> f32 {
        let s = s.max(1e-6);
        let k = s * self.strike_ratio;
        // `(s / k).ln()` stays per-element: k is proportional to s, but
        // folding the ratio to a constant would change the float result.
        let d1 = ((s / k).ln() + pc.drift) / pc.vol_sqrt_t;
        let d2 = d1 - pc.vol_sqrt_t;
        s * cnd(d1) - k * pc.discount * cnd(d2)
    }
}

/// Cumulative standard normal distribution via the Abramowitz–Stegun
/// polynomial approximation used by the CUDA sample.
pub(crate) fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    const RSQRT2PI: f32 = 0.398_942_3;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let cnd = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - cnd
    } else {
        cnd
    }
}

impl Kernel for Blackscholes {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::elementwise()
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let pc = self.consts();
        for r in tile.row0..tile.row0 + tile.rows {
            let src = &input.row(r)[tile.col0..tile.col0 + tile.cols];
            let dst = &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = self.price_with(&pc, s);
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // The NN approximation of the strongly nonlinear pricing formula is
        // noticeably worse than raw int8 (paper Fig 7: 42% MAPE TPU-only).
        6.0
    }

    fn work_per_element(&self) -> f64 {
        45.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-3);
        assert!(cnd(5.0) > 0.999);
        assert!(cnd(-5.0) < 0.001);
        assert!((cnd(1.0) + cnd(-1.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn call_price_is_positive_and_below_spot() {
        let k = Blackscholes::default();
        for s in [1.0, 30.0, 100.0, 500.0] {
            let p = k.price(s);
            assert!(p > 0.0, "price({s}) = {p}");
            assert!(p < s);
        }
    }

    #[test]
    fn price_is_monotone_in_spot() {
        let k = Blackscholes::default();
        // With strike proportional to spot, the price scales with the spot.
        assert!(k.price(200.0) > k.price(100.0));
    }

    #[test]
    fn tile_execution_matches_scalar() {
        let k = Blackscholes::default();
        let input = Tensor::from_fn(4, 8, |r, c| 20.0 + (r * 8 + c) as f32);
        let mut out = Tensor::zeros(4, 8);
        let tile = Tile {
            index: 0,
            row0: 1,
            col0: 2,
            rows: 2,
            cols: 4,
        };
        k.run_exact(&[&input], tile, &mut out);
        assert_eq!(out[(1, 2)], k.price(input[(1, 2)]));
        assert_eq!(out[(2, 5)], k.price(input[(2, 5)]));
        assert_eq!(out[(0, 0)], 0.0, "outside the tile is untouched");
    }
}
