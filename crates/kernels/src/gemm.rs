//! Dense matrix multiplication (the `GEMM` VOP of Table 1).
//!
//! The paper's programming-model walkthrough (Fig 4) uses a 2K x 2K GEMM
//! decomposed into per-device chunks: each HLOP computes a tile of the
//! output from a row band of `A` and the whole of `B`. The kernel here
//! multiplies two equal-shaped square matrices so it fits the VOP
//! single-shape partitioning (`C = A * B`, all `n x n`).

use shmt_tensor::quant::QuantParams;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// Square matrix multiply kernel: `out[tile] = (A * B)[tile]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gemm;

/// Depth of the k-blocking: `KB` rows of `B` (a `KB x tile_cols` panel)
/// are streamed against every output row before moving to the next panel,
/// so the panel stays cache-resident across the whole row band.
const KB: usize = 128;

/// Blocked i-k-j matrix multiply of `a[rows, :] * b` restricted to output
/// columns `col0..col0 + ncols`, overwriting that span of `out`.
///
/// Per output element the products accumulate in globally ascending `k`
/// order with the same zero-skip as a naive i-k-j loop, so results are
/// bit-identical to the unblocked form.
pub(crate) fn gemm_into(
    a: &Tensor,
    b: &Tensor,
    row0: usize,
    nrows: usize,
    col0: usize,
    ncols: usize,
    out: &mut Tensor,
) {
    let depth = a.cols();
    for r in row0..row0 + nrows {
        out.row_mut(r)[col0..col0 + ncols].fill(0.0);
    }
    let mut kb = 0;
    while kb < depth {
        let kend = (kb + KB).min(depth);
        for r in row0..row0 + nrows {
            let apanel = &a.row(r)[kb..kend];
            let dst = &mut out.row_mut(r)[col0..col0 + ncols];
            for (k, &av) in apanel.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b.row(kb + k)[col0..col0 + ncols];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
        kb = kend;
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "GEMM"
    }

    fn shape(&self) -> KernelShape {
        KernelShape {
            num_inputs: 2,
            global_inputs: true,
            ..KernelShape::elementwise()
        }
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let (a, b) = (inputs[0], inputs[1]);
        assert_eq!(
            a.shape(),
            b.shape(),
            "GEMM VOP multiplies equal-shaped squares"
        );
        let (n, m) = a.shape();
        assert_eq!(n, m, "GEMM VOP requires square inputs");
        gemm_into(a, b, tile.row0, tile.rows, tile.col0, tile.cols, out);
    }

    /// The Edge TPU is literally a matrix engine: its int8 GEMM quantizes
    /// both operands globally (weights-and-activations style) rather than
    /// per partition, because every output tile reads all of `A`'s row
    /// band and all of `B`.
    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let qa = QuantParams::from_slice(inputs[0].as_slice());
        let qb = QuantParams::from_slice(inputs[1].as_slice());
        let a = inputs[0].map(|v| qa.snap(v));
        let b = inputs[1].map(|v| qb.snap(v));
        self.run_exact(&[&a, &b], tile, out);
        // Output through the int8 accumulator-rescale grid.
        let view = out.view(tile.row0, tile.col0, tile.rows, tile.cols);
        let (lo, hi) = view.min_max();
        let q = QuantParams::from_range(lo, hi);
        for r in tile.row0..tile.row0 + tile.rows {
            for v in &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols] {
                *v = q.snap(*v);
            }
        }
    }

    fn work_per_element(&self) -> f64 {
        // 2n flops per output element; parameterized at the paper's 2K.
        4096.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(n: usize) -> Tile {
        Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: n,
            cols: n,
        }
    }

    #[test]
    fn matches_reference_gemm() {
        let a = Tensor::from_fn(8, 8, |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
        let b = Tensor::from_fn(8, 8, |r, c| ((r + c * 7) % 11) as f32 * 0.5);
        let mut out = Tensor::zeros(8, 8);
        Gemm.run_exact(&[&a, &b], full(8), &mut out);
        let expect = crate::primitives::gemm(&a, &b);
        for (x, y) in out.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn tile_split_matches_full_run() {
        let a = Tensor::from_fn(16, 16, |r, c| ((r * 5 + c * 3) % 7) as f32);
        let b = Tensor::from_fn(16, 16, |r, c| ((r + c) % 9) as f32 - 4.0);
        let mut whole = Tensor::zeros(16, 16);
        Gemm.run_exact(&[&a, &b], full(16), &mut whole);
        let mut split = Tensor::zeros(16, 16);
        for (i, (r0, c0)) in [(0, 0), (0, 8), (8, 0), (8, 8)].iter().enumerate() {
            let t = Tile {
                index: i,
                row0: *r0,
                col0: *c0,
                rows: 8,
                cols: 8,
            };
            Gemm.run_exact(&[&a, &b], t, &mut split);
        }
        assert_eq!(whole.as_slice(), split.as_slice());
    }

    #[test]
    fn npu_gemm_is_close_but_quantized() {
        let a = Tensor::from_fn(16, 16, |r, c| ((r * 13 + c) % 17) as f32 / 17.0);
        let b = Tensor::from_fn(16, 16, |r, c| ((r + c * 11) % 13) as f32 / 13.0);
        let mut exact = Tensor::zeros(16, 16);
        Gemm.run_exact(&[&a, &b], full(16), &mut exact);
        let mut approx = Tensor::zeros(16, 16);
        Gemm.run_npu(&[&a, &b], full(16), &mut approx);
        let (lo, hi) = exact.min_max();
        let range = hi - lo;
        let mut max_err = 0.0f32;
        for (x, y) in exact.as_slice().iter().zip(approx.as_slice()) {
            max_err = max_err.max((x - y).abs());
        }
        assert!(max_err > 0.0, "int8 GEMM must differ");
        assert!(
            max_err < 0.1 * range,
            "but stay close: {max_err} of {range}"
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let a = Tensor::zeros(4, 8);
        let b = Tensor::zeros(4, 8);
        let mut out = Tensor::zeros(4, 8);
        Gemm.run_exact(
            &[&a, &b],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 4,
                cols: 8,
            },
            &mut out,
        );
    }
}
