//! Same-size 2-D convolution (the `conv` VOP of Table 1).
//!
//! A small odd-sized filter applied with clamped boundaries; the filter is
//! a kernel parameter (like the NPU models, each deployed conv HLOP is
//! specialized for one filter).

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// Convolution kernel with a fixed filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    filter: Tensor,
}

impl Conv2d {
    /// Creates a convolution VOP kernel.
    ///
    /// # Panics
    ///
    /// Panics if the filter has even dimensions.
    pub fn new(filter: Tensor) -> Self {
        let (fr, fc) = filter.shape();
        assert!(fr % 2 == 1 && fc % 2 == 1, "filter dimensions must be odd");
        Conv2d { filter }
    }

    /// A 3x3 Gaussian-ish blur.
    pub fn gaussian3x3() -> Self {
        let w = [1.0f32, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
        Conv2d::new(Tensor::from_vec(3, 3, w.iter().map(|v| v / 16.0).collect()).expect("3x3"))
    }

    /// The filter in effect.
    pub fn filter(&self) -> &Tensor {
        &self.filter
    }
}

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "conv"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::stencil(self.filter.rows() / 2)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let (fr, fc) = self.filter.shape();
        let (hr, hc) = (fr / 2, fc / 2);
        let (hri, hci) = (hr as isize, hc as isize);
        let interior = crate::stencil::interior(tile, hr, hc, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let mut acc = 0.0f32;
            for i in 0..fr {
                for j in 0..fc {
                    let rr = (r as isize + i as isize - hri).clamp(0, rows as isize - 1) as usize;
                    let cc = (c as isize + j as isize - hci).clamp(0, cols as isize - 1) as usize;
                    acc += input[(rr, cc)] * self.filter[(i, j)];
                }
            }
            out[(r, c)] = acc;
        });
        let Some(it) = interior else { return };
        let filter_rows: Vec<&[f32]> = (0..fr).map(|i| self.filter.row(i)).collect();
        for r in it.r0..it.r1 {
            // The fr input rows this output row reads, clipped to the
            // interior's column footprint.
            let src_rows: Vec<&[f32]> = (0..fr)
                .map(|i| &input.row(r + i - hr)[it.c0 - hc..])
                .collect();
            let dst = &mut out.row_mut(r)[it.c0..it.c1];
            for (x, d) in dst.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (src, fil) in src_rows.iter().zip(&filter_rows) {
                    // Same filter-row-major accumulation order as above.
                    for (&v, &w) in src[x..x + fc].iter().zip(*fil) {
                        acc += v * w;
                    }
                }
                *d = acc;
            }
        }
    }

    fn work_per_element(&self) -> f64 {
        (self.filter.len() * 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_primitive_conv2d() {
        let input = Tensor::from_fn(12, 12, |r, c| ((r * 7 + c * 3) % 19) as f32);
        let k = Conv2d::gaussian3x3();
        let mut out = Tensor::zeros(12, 12);
        k.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 12,
                cols: 12,
            },
            &mut out,
        );
        let expect = crate::primitives::conv2d(&input, k.filter());
        for (a, b) in out.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_preserves_flat_regions() {
        let input = Tensor::filled(8, 8, 9.0);
        let k = Conv2d::gaussian3x3();
        let mut out = Tensor::zeros(8, 8);
        k.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        for &v in out.as_slice() {
            assert!((v - 9.0).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_filter() {
        Conv2d::new(Tensor::zeros(2, 2));
    }
}
