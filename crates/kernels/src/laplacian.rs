//! 3x3 Laplacian edge filter (OpenCV baseline).
//!
//! The signed 4-neighbor Laplacian `n + s + e + w - 4c` with clamped
//! boundaries. Flat regions produce near-zero outputs — the property that
//! makes Laplacian's MAPE sensitive to approximation (paper §5.3).

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// 3x3 Laplacian filter kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Laplacian;

impl Kernel for Laplacian {
    fn name(&self) -> &'static str {
        "Laplacian"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::stencil(1)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            input[(r, c)]
        };
        let interior = crate::stencil::interior(tile, 1, 1, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let (ri, ci) = (r as isize, c as isize);
            out[(r, c)] = at(ri - 1, ci) + at(ri + 1, ci) + at(ri, ci - 1) + at(ri, ci + 1)
                - 4.0 * input[(r, c)];
        });
        let Some(i) = interior else { return };
        for r in i.r0..i.r1 {
            let up = &input.row(r - 1)[i.c0 - 1..i.c1 + 1];
            let mid = &input.row(r)[i.c0 - 1..i.c1 + 1];
            let dn = &input.row(r + 1)[i.c0 - 1..i.c1 + 1];
            let dst = &mut out.row_mut(r)[i.c0..i.c1];
            for (((d, u), m), l) in dst
                .iter_mut()
                .zip(up.windows(3))
                .zip(mid.windows(3))
                .zip(dn.windows(3))
            {
                // north + south + west + east - 4*center, as above.
                *d = u[1] + l[1] + m[0] + m[2] - 4.0 * m[1];
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // Edge-detector outputs are dominated by near-zero values, which the
        // int8 NN reproduces only coarsely (paper Fig 7: 34.5% TPU MAPE).
        2.0
    }

    fn npu_native_u8(&self) -> bool {
        true
    }

    fn work_per_element(&self) -> f64 {
        9.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_gives_zero() {
        let input = Tensor::filled(8, 8, 42.0);
        let mut out = Tensor::filled(8, 8, 99.0);
        Laplacian.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 8,
                cols: 8,
            },
            &mut out,
        );
        assert!(out.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn point_source_gives_signed_response() {
        let mut input = Tensor::zeros(5, 5);
        input[(2, 2)] = 1.0;
        let mut out = Tensor::zeros(5, 5);
        Laplacian.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 5,
                cols: 5,
            },
            &mut out,
        );
        assert_eq!(out[(2, 2)], -4.0);
        assert_eq!(out[(1, 2)], 1.0);
        assert_eq!(out[(2, 1)], 1.0);
        assert_eq!(out[(0, 0)], 0.0);
    }

    #[test]
    fn linear_ramp_gives_zero_interior() {
        let input = Tensor::from_fn(8, 8, |r, c| (2 * r + 3 * c) as f32);
        let mut out = Tensor::zeros(8, 8);
        Laplacian.run_exact(
            &[&input],
            Tile {
                index: 0,
                row0: 1,
                col0: 1,
                rows: 6,
                cols: 6,
            },
            &mut out,
        );
        for r in 1..7 {
            for c in 1..7 {
                assert!(out[(r, c)].abs() < 1e-4, "({r},{c}) = {}", out[(r, c)]);
            }
        }
    }
}
