//! Element-wise and tiling VOP primitives (paper Table 1).
//!
//! SHMT's VOP list spans two parallelization models: element-wise vector
//! ops (`add`, `log`, `relu`, reductions, ...) and tile-wise matrix ops
//! (`GEMM`, `conv`, `stencil`, plus the benchmark transforms that live in
//! their own modules). These primitives back the vector-model VOPs and are
//! used by the examples and the property-test suite.

use shmt_tensor::Tensor;

/// Unary element-wise VOPs from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Natural logarithm (non-positive inputs yield `-inf`/NaN as in libm).
    Log,
    /// Rectified linear unit.
    Relu,
    /// Reciprocal square root.
    Rsqrt,
    /// Square root.
    Sqrt,
    /// Hyperbolic tangent.
    Tanh,
}

impl UnaryOp {
    /// Applies the operation to one value.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            UnaryOp::Log => x.ln(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Tanh => x.tanh(),
        }
    }

    /// Applies the operation element-wise to a tensor.
    pub fn map(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.apply(v))
    }
}

/// Binary element-wise VOPs from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Multiply,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl BinaryOp {
    /// Applies the operation to a pair of values.
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Multiply => a * b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// Applies the operation element-wise across two equal-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "binary op requires equal shapes");
        let data: Vec<f32> = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| self.apply(x, y))
            .collect();
        Tensor::from_vec(a.rows(), a.cols(), data).expect("same shape")
    }
}

/// Sum of all elements (`reduce_sum`). Accumulates in `f64` for stability.
pub fn reduce_sum(t: &Tensor) -> f64 {
    t.as_slice().iter().map(|&v| v as f64).sum()
}

/// Mean of all elements (`reduce_average`).
pub fn reduce_average(t: &Tensor) -> f64 {
    reduce_sum(t) / t.len() as f64
}

/// Maximum element (`reduce_max`); NaNs are ignored.
pub fn reduce_max(t: &Tensor) -> f32 {
    t.min_max().1
}

/// Minimum element (`reduce_min`); NaNs are ignored.
pub fn reduce_min(t: &Tensor) -> f32 {
    t.min_max().0
}

/// Dense matrix multiply (`GEMM`): `a (m x k) * b (k x n) -> (m x n)`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn gemm(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "GEMM inner dimensions must agree: {k} vs {k2}");
    let mut out = Tensor::zeros(m, n);
    // Shares the k-blocked i-k-j core with the GEMM VOP kernel; products
    // still accumulate in ascending k order per element.
    crate::gemm::gemm_into(a, b, 0, m, 0, n, &mut out);
    out
}

/// Same-size 2-D convolution (`conv`) with clamped boundaries.
///
/// # Panics
///
/// Panics if the filter has even dimensions.
pub fn conv2d(input: &Tensor, filter: &Tensor) -> Tensor {
    use crate::Kernel;
    let (rows, cols) = input.shape();
    let mut out = Tensor::zeros(rows, cols);
    let tile = shmt_tensor::tile::Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows,
        cols,
    };
    // Shares the interior/halo-split convolution with the conv VOP kernel.
    crate::conv::Conv2d::new(filter.clone()).run_exact(&[input], tile, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_ops_match_libm() {
        assert_eq!(UnaryOp::Relu.apply(-3.0), 0.0);
        assert_eq!(UnaryOp::Relu.apply(3.0), 3.0);
        assert!((UnaryOp::Sqrt.apply(16.0) - 4.0).abs() < 1e-6);
        assert!((UnaryOp::Rsqrt.apply(4.0) - 0.5).abs() < 1e-6);
        assert!((UnaryOp::Log.apply(std::f32::consts::E) - 1.0).abs() < 1e-6);
        assert!((UnaryOp::Tanh.apply(0.0)).abs() < 1e-9);
    }

    #[test]
    fn binary_ops_zip_elementwise() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 5.0, -2.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4.0, 2.0, -3.0]).unwrap();
        assert_eq!(BinaryOp::Add.zip(&a, &b).as_slice(), &[5.0, 7.0, -5.0]);
        assert_eq!(BinaryOp::Sub.zip(&a, &b).as_slice(), &[-3.0, 3.0, 1.0]);
        assert_eq!(BinaryOp::Multiply.zip(&a, &b).as_slice(), &[4.0, 10.0, 6.0]);
        assert_eq!(BinaryOp::Max.zip(&a, &b).as_slice(), &[4.0, 5.0, -2.0]);
        assert_eq!(BinaryOp::Min.zip(&a, &b).as_slice(), &[1.0, 2.0, -3.0]);
    }

    #[test]
    fn reductions_agree() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(reduce_sum(&t), 10.0);
        assert_eq!(reduce_average(&t), 2.5);
        assert_eq!(reduce_max(&t), 4.0);
        assert_eq!(reduce_min(&t), 1.0);
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Tensor::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Tensor::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(gemm(&a, &id).as_slice(), a.as_slice());
    }

    #[test]
    fn gemm_matches_hand_computed() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn conv2d_identity_filter() {
        let input = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let mut filter = Tensor::zeros(3, 3);
        filter[(1, 1)] = 1.0;
        assert_eq!(conv2d(&input, &filter).as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_box_blur_preserves_mean_of_flat() {
        let input = Tensor::filled(6, 6, 3.0);
        let filter = Tensor::filled(3, 3, 1.0 / 9.0);
        let out = conv2d(&input, &filter);
        for &v in out.as_slice() {
            assert!((v - 3.0).abs() < 1e-5);
        }
    }
}
