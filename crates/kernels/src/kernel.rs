use std::fmt;

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

/// How two partial reduction buffers combine (for reduction VOPs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum of partials (reduce_sum, reduce_hist256).
    Sum,
    /// Element-wise maximum of partials (reduce_max).
    Max,
    /// Element-wise minimum of partials (reduce_min).
    Min,
}

impl ReduceOp {
    /// Combines one partial value into an accumulator.
    pub fn combine(&self, acc: f32, partial: f32) -> f32 {
        match self {
            ReduceOp::Sum => acc + partial,
            ReduceOp::Max => acc.max(partial),
            ReduceOp::Min => acc.min(partial),
        }
    }

    /// The identity element of the operation.
    pub fn identity(&self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
        }
    }
}

/// How the outputs of a kernel's HLOPs combine into the VOP result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Each HLOP writes a disjoint tile of the output; aggregation is a
    /// gather of the tiles (the element-wise and tile-wise models of
    /// paper §3.2.1).
    Tile,
    /// Each HLOP produces a private reduction buffer of the given shape
    /// and the runtime folds the buffers with the operation (Histogram's
    /// `reduce_hist256` sums; `reduce_max`/`reduce_min` take extrema).
    Reduce {
        /// Rows of the reduction buffer.
        rows: usize,
        /// Columns of the reduction buffer.
        cols: usize,
        /// How partial buffers combine.
        op: ReduceOp,
    },
}

/// Static facts the runtime needs to partition a kernel correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelShape {
    /// Stencil halo (elements read outside the tile, clamped at dataset
    /// edges). Zero for element-wise and block kernels.
    pub halo: usize,
    /// Tiles must start on multiples of this edge so block transforms keep
    /// their phase (8 for DCT8x8, 32 for the blocked DWT). 1 = unaligned.
    pub block_align: usize,
    /// Partitions must span entire rows (row-wise FFT).
    pub full_rows: bool,
    /// How HLOP outputs aggregate.
    pub aggregation: Aggregation,
    /// Number of input tensors the kernel consumes.
    pub num_inputs: usize,
    /// `true` if computing any output tile may read input elements far
    /// outside the tile's halo-extended region (GEMM reads entire rows of
    /// `A` and all of `B`). Executors must hand such kernels the full
    /// input tensors rather than per-tile extracts.
    pub global_inputs: bool,
}

impl KernelShape {
    /// An element-wise kernel over one input.
    pub fn elementwise() -> Self {
        KernelShape {
            halo: 0,
            block_align: 1,
            full_rows: false,
            aggregation: Aggregation::Tile,
            num_inputs: 1,
            global_inputs: false,
        }
    }

    /// A stencil kernel with the given halo over one input.
    pub fn stencil(halo: usize) -> Self {
        KernelShape {
            halo,
            ..Self::elementwise()
        }
    }

    /// A block-transform kernel whose tiles must align to `edge`.
    pub fn blocked(edge: usize) -> Self {
        KernelShape {
            block_align: edge,
            ..Self::elementwise()
        }
    }

    /// Allocates the output tensor for a dataset of `rows x cols`,
    /// initialized to the aggregation's identity.
    pub fn allocate_output(&self, rows: usize, cols: usize) -> Tensor {
        match self.aggregation {
            Aggregation::Tile => Tensor::zeros(rows, cols),
            Aggregation::Reduce { rows, cols, op } => Tensor::filled(rows, cols, op.identity()),
        }
    }
}

/// A benchmark compute kernel with an exact (fp32) path and an NPU (int8
/// Edge TPU) path.
///
/// `run_exact` writes the output elements covered by `tile`; stencil and
/// block kernels may *read* outside the tile (their HLOP input partitions
/// include the halo). `run_npu` produces the degraded result the Edge TPU
/// device delivers; the default implementation routes through
/// [`crate::npu::run_via_npu`] with the kernel's fidelity.
pub trait Kernel: Send + Sync + fmt::Debug {
    /// Stable kernel name (matches the paper's benchmark naming).
    fn name(&self) -> &'static str;

    /// Partitioning facts.
    fn shape(&self) -> KernelShape;

    /// Computes the output tile exactly in `f32`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `inputs` does not match
    /// [`KernelShape::num_inputs`] or shapes disagree.
    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor);

    /// Computes the output tile through the int8 NPU path.
    fn run_npu(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        crate::npu::run_via_npu(self, inputs, tile, out, self.npu_fidelity());
    }

    /// Residual NN-approximation coarseness: a multiplier on the int8
    /// output grid step. `1.0` = pure int8 quantization error.
    fn npu_fidelity(&self) -> f32 {
        1.0
    }

    /// `true` for kernels whose NPU model consumes 8-bit image data
    /// natively (uint8 input tensors): integer-valued inputs in
    /// `[0, 255]` then enter the device without quantization loss.
    fn npu_native_u8(&self) -> bool {
        false
    }

    /// Post-aggregation finalization, applied exactly once after all HLOP
    /// partials have been folded (e.g. `reduce_average` divides its sum by
    /// its count). The default does nothing.
    fn finalize(&self, out: &mut Tensor) {
        let _ = out;
    }

    /// Relative arithmetic work per output element, used by the platform
    /// cost model (normalized so a 3x3 stencil is ~9).
    fn work_per_element(&self) -> f64;
}

/// The paper's ten benchmark applications (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// European option pricing (CUDA Examples).
    Blackscholes,
    /// 8x8 block discrete cosine transform (CUDA Examples).
    Dct8x8,
    /// Blocked CDF 9/7 discrete wavelet transform (Rodinia).
    Dwt,
    /// Row-wise fast Fourier transform magnitude (CUDA Examples).
    Fft,
    /// 256-bin histogram (OpenCV).
    Histogram,
    /// Thermal simulation stencil (Rodinia).
    Hotspot,
    /// 3x3 Laplacian edge filter (OpenCV).
    Laplacian,
    /// 3x3 mean filter (OpenCV).
    MeanFilter,
    /// Sobel gradient magnitude (OpenCV).
    Sobel,
    /// Speckle-reducing anisotropic diffusion (CUDA Examples / Rodinia).
    Srad,
}

/// All ten benchmarks in the paper's presentation order.
pub const ALL_BENCHMARKS: [Benchmark; 10] = [
    Benchmark::Blackscholes,
    Benchmark::Dct8x8,
    Benchmark::Dwt,
    Benchmark::Fft,
    Benchmark::Histogram,
    Benchmark::Hotspot,
    Benchmark::Laplacian,
    Benchmark::MeanFilter,
    Benchmark::Sobel,
    Benchmark::Srad,
];

impl Benchmark {
    /// The benchmark's display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "Blackscholes",
            Benchmark::Dct8x8 => "DCT8x8",
            Benchmark::Dwt => "DWT",
            Benchmark::Fft => "FFT",
            Benchmark::Histogram => "Histogram",
            Benchmark::Hotspot => "Hotspot",
            Benchmark::Laplacian => "Laplacian",
            Benchmark::MeanFilter => "MF",
            Benchmark::Sobel => "Sobel",
            Benchmark::Srad => "SRAD",
        }
    }

    /// Application domain (Table 2's "Category" column).
    pub fn category(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "Finance",
            Benchmark::Dct8x8 | Benchmark::Laplacian | Benchmark::MeanFilter | Benchmark::Sobel => {
                "Image Processing"
            }
            Benchmark::Dwt | Benchmark::Fft => "Signal Processing",
            Benchmark::Histogram => "Statistical",
            Benchmark::Hotspot => "Physics Simulation",
            Benchmark::Srad => "Medical Imaging",
        }
    }

    /// `true` for the six image-related workloads evaluated with SSIM
    /// (paper §5.3, Fig 8).
    pub fn is_image(&self) -> bool {
        matches!(
            self,
            Benchmark::Dct8x8
                | Benchmark::Dwt
                | Benchmark::Laplacian
                | Benchmark::MeanFilter
                | Benchmark::Sobel
                | Benchmark::Srad
        )
    }

    /// Constructs the kernel implementation.
    pub fn kernel(&self) -> Box<dyn Kernel> {
        match self {
            Benchmark::Blackscholes => Box::new(crate::blackscholes::Blackscholes::default()),
            Benchmark::Dct8x8 => Box::new(crate::dct8x8::Dct8x8),
            Benchmark::Dwt => Box::new(crate::dwt::Dwt97::default()),
            Benchmark::Fft => Box::new(crate::fft::RowFft),
            Benchmark::Histogram => Box::new(crate::histogram::Histogram256),
            Benchmark::Hotspot => Box::new(crate::hotspot::Hotspot::default()),
            Benchmark::Laplacian => Box::new(crate::laplacian::Laplacian),
            Benchmark::MeanFilter => Box::new(crate::mean_filter::MeanFilter),
            Benchmark::Sobel => Box::new(crate::sobel::Sobel),
            Benchmark::Srad => Box::new(crate::srad::Srad::default()),
        }
    }

    /// Generates the benchmark's seeded input tensors at the given shape
    /// (the paper's datasets are synthetic random data, §5.1).
    pub fn generate_inputs(&self, rows: usize, cols: usize, seed: u64) -> Vec<Tensor> {
        use shmt_tensor::gen;
        match self {
            Benchmark::Blackscholes => vec![gen::prices(rows, cols, seed)],
            Benchmark::Dct8x8
            | Benchmark::Dwt
            | Benchmark::Laplacian
            | Benchmark::MeanFilter
            | Benchmark::Sobel => vec![gen::image8(rows, cols, seed)],
            Benchmark::Fft => vec![gen::heterogeneous(
                rows,
                cols,
                seed,
                gen::FieldConfig {
                    base: 0.0,
                    amplitude: 1.0,
                    block: gen::scaled_block(rows, cols),
                    tail: 0.7,
                },
            )],
            Benchmark::Histogram => vec![gen::image8(rows, cols, seed)],
            Benchmark::Hotspot => vec![
                gen::temperature(rows, cols, seed),
                gen::heterogeneous(
                    rows,
                    cols,
                    seed ^ 0x9e37_79b9,
                    gen::FieldConfig {
                        base: 0.5,
                        amplitude: 0.45,
                        block: gen::scaled_block(rows, cols),
                        tail: 0.8,
                    },
                ),
            ],
            Benchmark::Srad => vec![gen::speckle(rows, cols, seed)],
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_BENCHMARKS
            .iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| format!("unknown benchmark `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_distinct_names() {
        let mut names: Vec<_> = ALL_BENCHMARKS.iter().map(Benchmark::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn from_str_round_trips() {
        for b in ALL_BENCHMARKS {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("bogus".parse::<Benchmark>().is_err());
    }

    #[test]
    fn six_image_benchmarks() {
        assert_eq!(ALL_BENCHMARKS.iter().filter(|b| b.is_image()).count(), 6);
    }

    #[test]
    fn inputs_match_kernel_arity() {
        for b in ALL_BENCHMARKS {
            let inputs = b.generate_inputs(32, 32, 1);
            assert_eq!(inputs.len(), b.kernel().shape().num_inputs, "{b}");
        }
    }

    #[test]
    fn allocate_output_matches_aggregation() {
        let t = KernelShape::elementwise().allocate_output(4, 6);
        assert_eq!(t.shape(), (4, 6));
        let s = KernelShape {
            aggregation: Aggregation::Reduce {
                rows: 1,
                cols: 256,
                op: ReduceOp::Sum,
            },
            ..KernelShape::elementwise()
        }
        .allocate_output(100, 100);
        assert_eq!(s.shape(), (1, 256));
    }
}
