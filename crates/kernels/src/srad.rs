//! Speckle-reducing anisotropic diffusion (SRAD, Rodinia/CUDA baseline).
//!
//! One explicit iteration of the SRAD PDE used for ultrasound despeckling.
//! The diffusion coefficient of each cell derives from its local gradient
//! and Laplacian relative to a reference speckle statistic `q0`; the update
//! then takes the divergence of coefficient-weighted derivatives, which
//! reads coefficients of south/east neighbors — an effective halo of 2.
//!
//! The Rodinia implementation derives `q0` from a fixed region of interest
//! each iteration; to keep HLOP partitions independent we treat `q0` as a
//! kernel parameter (the value the ROI statistic converges to), which the
//! paper's partitioning implicitly requires as well.

use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::{Kernel, KernelShape};

/// One SRAD diffusion iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Srad {
    /// Diffusion time step.
    pub lambda: f32,
    /// Reference speckle statistic (ROI coefficient of variation).
    pub q0: f32,
}

impl Default for Srad {
    fn default() -> Self {
        Srad {
            lambda: 0.25,
            q0: 0.5,
        }
    }
}

impl Srad {
    /// Diffusion coefficient at `(r, c)` computed from the 4-neighborhood.
    fn coefficient(&self, input: &Tensor, r: isize, c: isize) -> f32 {
        let (rows, cols) = input.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            input[(r, c)]
        };
        self.coefficient_of(
            at(r, c),
            at(r - 1, c),
            at(r + 1, c),
            at(r, c - 1),
            at(r, c + 1),
        )
    }

    /// The same diffusion coefficient from already-gathered neighbor
    /// values (the interior fast path gathers via row slices).
    #[inline]
    fn coefficient_of(&self, center: f32, up: f32, down: f32, left: f32, right: f32) -> f32 {
        let j = center.max(1e-6);
        let dn = up - j;
        let ds = down - j;
        let dw = left - j;
        let de = right - j;
        let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j * j);
        let l = (dn + ds + dw + de) / j;
        let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
        let den = (1.0 + 0.25 * l) * (1.0 + 0.25 * l);
        let q2 = (num / den.max(1e-6)).max(0.0);
        let q02 = self.q0 * self.q0;
        let c = 1.0 / (1.0 + (q2 - q02) / (q02 * (1.0 + q02)));
        c.clamp(0.0, 1.0)
    }
}

impl Kernel for Srad {
    fn name(&self) -> &'static str {
        "SRAD"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::stencil(2)
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        let (rows, cols) = input.shape();
        let at = |r: isize, c: isize| -> f32 {
            let r = r.clamp(0, rows as isize - 1) as usize;
            let c = c.clamp(0, cols as isize - 1) as usize;
            input[(r, c)]
        };
        let interior = crate::stencil::interior(tile, 2, 2, rows, cols);
        crate::stencil::for_each_halo(tile, interior, |r, c| {
            let (ri, ci) = (r as isize, c as isize);
            let j = input[(r, c)];
            let cc = self.coefficient(input, ri, ci);
            let cs = self.coefficient(input, ri + 1, ci);
            let ce = self.coefficient(input, ri, ci + 1);
            // Divergence of c * grad J on the staggered Rodinia grid.
            let d = cc * (at(ri - 1, ci) - j)
                + cs * (at(ri + 1, ci) - j)
                + cc * (at(ri, ci - 1) - j)
                + ce * (at(ri, ci + 1) - j);
            out[(r, c)] = j + 0.25 * self.lambda * d;
        });
        let Some(i) = interior else { return };
        // Interior cells read rows r-1..=r+2 and columns c-1..=c+2 (the
        // south and east coefficients reach one further); 4-wide windows
        // over four row slices cover exactly that footprint.
        for r in i.r0..i.r1 {
            let rm1 = &input.row(r - 1)[i.c0 - 1..i.c1 + 2];
            let r0 = &input.row(r)[i.c0 - 1..i.c1 + 2];
            let rp1 = &input.row(r + 1)[i.c0 - 1..i.c1 + 2];
            let rp2 = &input.row(r + 2)[i.c0 - 1..i.c1 + 2];
            let dst = &mut out.row_mut(r)[i.c0..i.c1];
            for ((((d, um), m), dm), d2) in dst
                .iter_mut()
                .zip(rm1.windows(4))
                .zip(r0.windows(4))
                .zip(rp1.windows(4))
                .zip(rp2.windows(4))
            {
                // Window index 1 is the cell itself; 0/2/3 are c-1/c+1/c+2.
                let j = m[1];
                let cc = self.coefficient_of(m[1], um[1], dm[1], m[0], m[2]);
                let cs = self.coefficient_of(dm[1], m[1], d2[1], dm[0], dm[2]);
                let ce = self.coefficient_of(m[2], um[2], dm[2], m[1], m[3]);
                let div = cc * (um[1] - j) + cs * (dm[1] - j) + cc * (m[0] - j) + ce * (m[2] - j);
                *d = j + 0.25 * self.lambda * div;
            }
        }
    }

    fn npu_fidelity(&self) -> f32 {
        // The diffusion coefficient's nonlinearity is approximated by the
        // NN with error beyond one int8 step.
        5.0
    }

    fn work_per_element(&self) -> f64 {
        60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_tile(n: usize) -> Tile {
        Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: n,
            cols: n,
        }
    }

    #[test]
    fn flat_image_is_fixed_point() {
        let input = Tensor::filled(8, 8, 0.5);
        let mut out = Tensor::zeros(8, 8);
        Srad::default().run_exact(&[&input], full_tile(8), &mut out);
        for &v in out.as_slice() {
            assert!((v - 0.5).abs() < 1e-5);
        }
    }

    #[test]
    fn diffusion_smooths_speckle() {
        // A noisy checkerboard should have lower variance after one step.
        let input = Tensor::from_fn(16, 16, |r, c| if (r + c) % 2 == 0 { 0.4 } else { 0.6 });
        let mut out = Tensor::zeros(16, 16);
        Srad::default().run_exact(&[&input], full_tile(16), &mut out);
        let var = |t: &Tensor| {
            let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
            t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32
        };
        assert!(var(&out) < var(&input));
    }

    #[test]
    fn coefficients_stay_in_unit_interval() {
        let input = Tensor::from_fn(8, 8, |r, c| 0.1 + ((r * 13 + c * 7) % 11) as f32 * 0.08);
        let k = Srad::default();
        for r in 0..8 {
            for c in 0..8 {
                let v = k.coefficient(&input, r as isize, c as isize);
                assert!((0.0..=1.0).contains(&v), "c({r},{c}) = {v}");
            }
        }
    }

    #[test]
    fn tile_split_matches_full_run() {
        let input = Tensor::from_fn(16, 16, |r, c| 0.2 + ((r * 5 + c * 3) % 9) as f32 * 0.1);
        let k = Srad::default();
        let mut full = Tensor::zeros(16, 16);
        k.run_exact(&[&input], full_tile(16), &mut full);
        let mut split = Tensor::zeros(16, 16);
        for (i, r0) in [0usize, 8].iter().enumerate() {
            k.run_exact(
                &[&input],
                Tile {
                    index: i,
                    row0: *r0,
                    col0: 0,
                    rows: 8,
                    cols: 16,
                },
                &mut split,
            );
        }
        assert_eq!(full.as_slice(), split.as_slice());
    }
}
