//! Integration tests composing hetsim's pieces into small simulations.

use hetsim::{
    DeviceKind, DeviceProfile, DeviceTimeline, EnergyMeter, EventQueue, Interconnect,
    MemoryTracker, SimTime,
};

/// Two devices fed by one bus: transfers serialize, devices overlap.
#[test]
fn bus_contention_shapes_the_schedule() {
    let mut bus = Interconnect::new(1.0e9, 0.0);
    let mut fast = DeviceTimeline::new(DeviceProfile::jetson_gpu(1.0e9));
    let mut slow = DeviceTimeline::new(DeviceProfile::edge_tpu(0.5e9));

    // Both devices need 0.5 GB in before computing 1e9 work units.
    let t1 = bus.transfer(SimTime::ZERO, 500_000_000);
    let t2 = bus.transfer(SimTime::ZERO, 500_000_000);
    assert_eq!(t1.end, t2.start, "second transfer queues behind the first");

    let f_done = fast.execute(t1.end, 1.0e9);
    let s_done = slow.execute(t2.end, 1.0e9);
    // Fast device: data at 0.5s + 1s compute. Slow: data at 1.0s + 2s.
    assert!((f_done.as_secs() - 1.5).abs() < 1e-3);
    assert!((s_done.as_secs() - 3.0).abs() < 1e-2);
    // The slow device's wait on the bus is visible.
    assert!(slow.transfer_wait() > 0.9);
}

/// Energy accounting over a two-device schedule matches hand arithmetic.
#[test]
fn energy_meter_integrates_schedule() {
    let gpu = DeviceProfile::jetson_gpu(1.0e9);
    let tpu = DeviceProfile::edge_tpu(2.0e9);
    let mut m_gpu = DeviceTimeline::new(gpu);
    let mut m_tpu = DeviceTimeline::new(tpu);
    m_gpu.execute(SimTime::ZERO, 2.0e9); // 2 s busy
    m_tpu.execute(SimTime::ZERO, 2.0e9); // 1 s busy

    let mut meter = EnergyMeter::jetson_prototype();
    meter.record_busy(DeviceKind::Gpu, m_gpu.busy_time(), gpu.active_power_w);
    meter.record_busy(DeviceKind::EdgeTpu, m_tpu.busy_time(), tpu.active_power_w);
    let makespan = m_gpu.free_at().max(m_tpu.free_at()).as_secs();
    let breakdown = meter.finish(makespan);

    // Idle floor: 3.02 W x ~2 s; active: 1.65x2 + 0.56x1.
    assert!((breakdown.idle_j - 3.02 * makespan).abs() < 1e-6);
    assert!(
        (breakdown.active_j - (1.65 * m_gpu.busy_time() + 0.56 * m_tpu.busy_time())).abs() < 1e-3
    );
    assert!(breakdown.total_j() > breakdown.idle_j);
}

/// A small event-driven loop: completion events pop in global time order
/// regardless of the insertion pattern.
#[test]
fn event_queue_drives_a_simulation() {
    let mut q = EventQueue::new();
    let mut devices = [
        DeviceTimeline::new(DeviceProfile::jetson_gpu(1.0e9)),
        DeviceTimeline::new(DeviceProfile::arm_cpu(0.3e9)),
    ];
    for (i, d) in devices.iter_mut().enumerate() {
        for _ in 0..3 {
            let done = d.execute(SimTime::ZERO, 0.3e9);
            q.push(done, i);
        }
    }
    let mut last = SimTime::ZERO;
    let mut count = 0;
    while let Some((at, dev)) = q.pop() {
        assert!(at >= last, "events must pop in time order");
        assert!(dev < devices.len());
        last = at;
        count += 1;
    }
    assert_eq!(count, 6);
    assert!(last >= SimTime::from_secs(3.0 * 0.3 / 0.3 - 0.01));
}

/// Memory tracker composes with a simulated double-buffered pipeline.
#[test]
fn memory_peaks_under_double_buffering() {
    let mut mem = MemoryTracker::new();
    mem.alloc("dataset", 1000);
    // Two staging buffers in flight at the peak.
    for _ in 0..10 {
        mem.alloc("staging", 50);
        mem.alloc("staging", 50);
        mem.free(50);
        mem.free(50);
    }
    assert_eq!(mem.peak_bytes(), 1100);
    assert_eq!(mem.current_bytes(), 1000);
    assert_eq!(mem.class_bytes("staging"), 1000);
}

/// Device memory capacity is visible for the runtime's HLOP fission rule.
#[test]
fn edge_tpu_capacity_is_exposed() {
    let tpu = DeviceProfile::edge_tpu(1.0e9);
    assert_eq!(tpu.device_memory_bytes, Some(8 * 1024 * 1024));
    assert!(DeviceProfile::jetson_gpu(1.0e9)
        .device_memory_bytes
        .is_none());
}

/// stall_until never rewinds a timeline.
#[test]
fn stall_is_monotone() {
    let mut d = DeviceTimeline::new(DeviceProfile::arm_cpu(1.0e9));
    let end = d.execute(SimTime::ZERO, 1.0e9);
    d.stall_until(SimTime::from_secs(0.5)); // earlier than free_at: no-op
    assert_eq!(d.free_at(), end);
    d.stall_until(SimTime::from_secs(2.0));
    assert_eq!(d.free_at(), SimTime::from_secs(2.0));
    assert!((d.transfer_wait() - 1.0).abs() < 1e-4); // modulo launch overhead
}
