/// Peak-footprint accounting at the process virtual-memory level.
///
/// The paper's Fig 11 compares the total memory footprint of SHMT runs
/// against the GPU baseline: Edge TPU HLOPs hold 1-byte int8 buffers and
/// need fewer intermediate buffers than the equivalent GPU kernels, so
/// benchmarks that push many HLOPs to the TPU can *shrink* their footprint
/// (§5.6). The SHMT runtime registers every buffer class it allocates here.
///
/// # Examples
///
/// ```
/// use hetsim::MemoryTracker;
///
/// let mut mem = MemoryTracker::new();
/// mem.alloc("input", 1024);
/// mem.alloc("scratch", 512);
/// mem.free(512);
/// assert_eq!(mem.current_bytes(), 1024);
/// assert_eq!(mem.peak_bytes(), 1536);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryTracker {
    current: u64,
    peak: u64,
    by_class: Vec<(String, u64)>,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation of `bytes` under the given class label.
    pub fn alloc(&mut self, class: &str, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        match self.by_class.iter_mut().find(|(c, _)| c == class) {
            Some((_, b)) => *b += bytes,
            None => self.by_class.push((class.to_owned(), bytes)),
        }
    }

    /// Registers a release of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are freed than are currently allocated.
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.current,
            "freeing {bytes} of {} allocated",
            self.current
        );
        self.current -= bytes;
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> u64 {
        self.current
    }

    /// High-water mark.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Cumulative bytes ever allocated under a class label.
    pub fn class_bytes(&self, class: &str) -> u64 {
        self.by_class
            .iter()
            .find(|(c, _)| c == class)
            .map_or(0, |(_, b)| *b)
    }

    /// All class labels and their cumulative allocations.
    pub fn classes(&self) -> impl Iterator<Item = (&str, u64)> {
        self.by_class.iter().map(|(c, b)| (c.as_str(), *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        m.alloc("a", 100);
        m.alloc("b", 50);
        m.free(120);
        m.alloc("c", 10);
        assert_eq!(m.peak_bytes(), 150);
        assert_eq!(m.current_bytes(), 40);
    }

    #[test]
    fn classes_accumulate() {
        let mut m = MemoryTracker::new();
        m.alloc("input", 10);
        m.alloc("input", 5);
        m.alloc("output", 7);
        assert_eq!(m.class_bytes("input"), 15);
        assert_eq!(m.class_bytes("output"), 7);
        assert_eq!(m.class_bytes("missing"), 0);
        assert_eq!(m.classes().count(), 2);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemoryTracker::new();
        m.alloc("a", 10);
        m.free(11);
    }
}
