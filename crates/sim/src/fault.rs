//! Deterministic fault injection for the virtual platform.
//!
//! A [`FaultPlan`] is a *schedule* of hardware misbehaviour expressed in
//! virtual time: per-device slowdown windows (thermal throttling, a
//! contended accelerator), transient bus-transfer failures (a flaky PCIe
//! link), and device dropout at an instant (a crashed driver, or an Edge
//! TPU that is simply absent at start). The plan is pure data — it never
//! acts on its own. A [`FaultInjector`] wraps a plan and answers the
//! runtime's questions ("how slow is device 2 right now?", "did this
//! transfer fail?", "when does device 0 die?") deterministically: the same
//! plan and seed always produce the same answers in the same order, so a
//! faulted run is exactly reproducible.
//!
//! The empty plan is free: [`FaultPlan::none`] makes
//! [`FaultInjector::active`] false, every slowdown factor exactly `1.0`,
//! and every transfer succeed without consuming randomness, so a runtime
//! threaded through an inactive injector is bit-identical to one without
//! it — the same single-code-path discipline the tracing layer uses for
//! its `NullSink`.

use crate::time::SimTime;
use shmt_trace::DeviceId;

/// A window of degraded throughput on one device: work started inside
/// `[from_s, until_s)` takes `factor` times as long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// The device that slows down.
    pub device: DeviceId,
    /// Window start, virtual seconds.
    pub from_s: f64,
    /// Window end (exclusive), virtual seconds.
    pub until_s: f64,
    /// Execution-time multiplier, `> 1.0`.
    pub factor: f64,
}

/// A device leaving the platform at a virtual instant. Work already
/// executed stays valid; pending work must be re-dispatched. `at_s == 0.0`
/// models a device that is unavailable from the start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    /// The device that dies.
    pub device: DeviceId,
    /// Time of death, virtual seconds.
    pub at_s: f64,
}

/// A persistent affine corruption of every value the Edge TPU produces:
/// a drifted quantization table or failing calibration writes back
/// `gain * v + bias` instead of `v`. Unlike slowdowns and dropouts, this
/// fault degrades *quality*, not *time* — it is what the output-side
/// quality guard exists to catch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpuMiscalibration {
    /// Multiplicative error on every TPU output element.
    pub gain: f32,
    /// Additive error on every TPU output element.
    pub bias: f32,
}

/// A deterministic schedule of faults for one run.
///
/// Build one with the `with_*` methods:
///
/// ```
/// use hetsim::FaultPlan;
///
/// let plan = FaultPlan::none()
///     .with_seed(7)
///     .with_slowdown(0, 0.0, 1.0, 4.0)
///     .with_transfer_failures(0.25)
///     .with_tpu_miscalibration(1.5, 0.1)
///     .with_dropout(2, 0.5);
/// assert!(!plan.is_empty());
/// assert_eq!(FaultPlan::none(), FaultPlan::default());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the transfer-failure draws.
    pub seed: u64,
    /// Slowdown windows, applied by start time of each execution.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Probability in `[0, 1)` that any single bus transfer fails and
    /// must be retried.
    pub transfer_failure_rate: f64,
    /// Retries allowed per transfer before the link is assumed recovered
    /// (the final attempt always succeeds so runs terminate).
    pub max_transfer_retries: usize,
    /// Base backoff charged before the first retry, virtual seconds;
    /// doubles per attempt.
    pub retry_backoff_s: f64,
    /// Ceiling on a single backoff interval, virtual seconds.
    pub retry_backoff_cap_s: f64,
    /// Device dropouts.
    pub dropouts: Vec<Dropout>,
    /// Silent corruption of all TPU output, if scheduled.
    pub tpu_miscalibration: Option<TpuMiscalibration>,
}

impl FaultPlan {
    /// The empty plan: no faults, and a guaranteed-identical run.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            slowdowns: Vec::new(),
            transfer_failure_rate: 0.0,
            max_transfer_retries: 4,
            retry_backoff_s: 100.0e-6,
            retry_backoff_cap_s: 1.6e-3,
            dropouts: Vec::new(),
            tpu_miscalibration: None,
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty()
            && self.transfer_failure_rate == 0.0
            && self.dropouts.is_empty()
            && self.tpu_miscalibration.is_none()
    }

    /// Sets the seed for transfer-failure draws.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same fault schedule with its seed re-derived from `salt` — a
    /// node replaying one device-fault plan across many requests
    /// decorrelates the per-request random draws this way while staying
    /// fully deterministic (the same `(plan, salt)` always yields the
    /// same derived plan).
    #[must_use]
    pub fn reseeded(&self, salt: u64) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = splitmix64(self.seed ^ salt);
        plan
    }

    /// Adds a slowdown window on `device` over `[from_s, until_s)`.
    ///
    /// # Panics
    ///
    /// Panics on a device index ≥ 3, a non-positive window, or a factor
    /// below 1.
    #[must_use]
    pub fn with_slowdown(
        mut self,
        device: DeviceId,
        from_s: f64,
        until_s: f64,
        factor: f64,
    ) -> Self {
        assert!(device < 3, "device index {device} out of range");
        assert!(
            from_s >= 0.0 && until_s > from_s,
            "bad slowdown window {from_s}..{until_s}"
        );
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be >= 1, got {factor}"
        );
        self.slowdowns.push(SlowdownWindow {
            device,
            from_s,
            until_s,
            factor,
        });
        self
    }

    /// Sets the transient transfer-failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1)`.
    #[must_use]
    pub fn with_transfer_failures(mut self, rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "failure rate must be in [0, 1), got {rate}"
        );
        self.transfer_failure_rate = rate;
        self
    }

    /// Schedules `device` to drop out at `at_s` virtual seconds.
    ///
    /// # Panics
    ///
    /// Panics on a device index ≥ 3 or a negative/non-finite time.
    #[must_use]
    pub fn with_dropout(mut self, device: DeviceId, at_s: f64) -> Self {
        assert!(device < 3, "device index {device} out of range");
        assert!(at_s >= 0.0 && at_s.is_finite(), "bad dropout time {at_s}");
        self.dropouts.push(Dropout { device, at_s });
        self
    }

    /// Marks `device` unavailable from the very start of the run
    /// (shorthand for a dropout at time zero).
    #[must_use]
    pub fn with_unavailable(self, device: DeviceId) -> Self {
        self.with_dropout(device, 0.0)
    }

    /// Corrupts every TPU output element to `gain * v + bias` — a drifted
    /// quantization calibration. A gain of 1 with a bias of 0 is the
    /// identity and is rejected; schedule no miscalibration instead.
    ///
    /// # Panics
    ///
    /// Panics on non-finite parameters or the identity transform.
    #[must_use]
    pub fn with_tpu_miscalibration(mut self, gain: f32, bias: f32) -> Self {
        assert!(
            gain.is_finite() && bias.is_finite(),
            "miscalibration must be finite, got gain {gain} bias {bias}"
        );
        assert!(
            gain != 1.0 || bias != 0.0,
            "identity miscalibration is no fault at all"
        );
        self.tpu_miscalibration = Some(TpuMiscalibration { gain, bias });
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counts of what the injector actually did during one run, carried in
/// the run's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Faults that fired (failed transfers, slowdown hits, dropouts).
    pub injected: usize,
    /// Transfer retries performed.
    pub retried: usize,
    /// Pending HLOPs moved off dead devices' queues.
    pub redispatched: usize,
    /// Devices that dropped out during the run.
    pub devices_lost: usize,
    /// Whether the run finished in a degraded configuration (at least one
    /// device lost).
    pub degraded: bool,
    /// Which devices (by [`DeviceId`]) dropped out — the per-device
    /// attribution behind `devices_lost`, consumed by serving-layer
    /// health tracking.
    pub lost: [bool; 3],
}

/// Answers the runtime's fault questions for one run, deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    draws: u64,
}

impl FaultInjector {
    /// Wraps a plan for one run.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            plan: plan.clone(),
            draws: 0,
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault is scheduled at all. When false, every query
    /// below is a constant and no randomness is consumed.
    pub fn active(&self) -> bool {
        !self.plan.is_empty()
    }

    /// The execution-time multiplier for work starting on `device` at
    /// `at`. Exactly `1.0` outside every window; overlapping windows
    /// compound multiplicatively.
    pub fn slowdown_factor(&self, device: DeviceId, at: SimTime) -> f64 {
        let t = at.as_secs();
        let mut factor = 1.0;
        for w in &self.plan.slowdowns {
            if w.device == device && t >= w.from_s && t < w.until_s {
                factor *= w.factor;
            }
        }
        factor
    }

    /// Draws whether the next bus transfer fails. Each call consumes one
    /// deterministic draw from the seeded sequence.
    pub fn transfer_fails(&mut self) -> bool {
        if self.plan.transfer_failure_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.plan.seed ^ self.draws.wrapping_mul(0x2545_F491_4F6C_DD1D));
        self.draws += 1;
        // Top 53 bits -> uniform f64 in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.plan.transfer_failure_rate
    }

    /// The backoff charged before retry number `attempt` (1-based):
    /// exponential, capped by the plan's ceiling.
    pub fn backoff(&self, attempt: usize) -> f64 {
        let doubled = self.plan.retry_backoff_s * (1u64 << (attempt - 1).min(32)) as f64;
        doubled.min(self.plan.retry_backoff_cap_s)
    }

    /// The scheduled TPU output corruption, if any.
    pub fn miscalibration(&self) -> Option<TpuMiscalibration> {
        self.plan.tpu_miscalibration
    }

    /// When `device` drops out, if ever: the earliest scheduled dropout.
    pub fn down_at(&self, device: DeviceId) -> Option<SimTime> {
        self.plan
            .dropouts
            .iter()
            .filter(|d| d.device == device)
            .map(|d| d.at_s)
            .min_by(|a, b| a.partial_cmp(b).expect("dropout times are finite"))
            .map(SimTime::from_secs)
    }
}

/// Finalizer from the splitmix64 generator — a full-avalanche mix, so
/// consecutive draw indices decorrelate completely. Keeping the generator
/// inline keeps this crate dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.active());
        assert_eq!(inj.slowdown_factor(0, SimTime::from_secs(0.5)), 1.0);
        assert!(!inj.transfer_fails());
        assert_eq!(inj.down_at(2), None);
    }

    #[test]
    fn slowdown_applies_inside_window_only() {
        let plan = FaultPlan::none().with_slowdown(1, 0.2, 0.4, 3.0);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.slowdown_factor(1, SimTime::from_secs(0.1)), 1.0);
        assert_eq!(inj.slowdown_factor(1, SimTime::from_secs(0.3)), 3.0);
        assert_eq!(
            inj.slowdown_factor(1, SimTime::from_secs(0.4)),
            1.0,
            "end is exclusive"
        );
        assert_eq!(
            inj.slowdown_factor(0, SimTime::from_secs(0.3)),
            1.0,
            "other device"
        );
    }

    #[test]
    fn overlapping_windows_compound() {
        let plan = FaultPlan::none()
            .with_slowdown(0, 0.0, 1.0, 2.0)
            .with_slowdown(0, 0.5, 1.0, 3.0);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.slowdown_factor(0, SimTime::from_secs(0.75)), 6.0);
    }

    #[test]
    fn transfer_draws_are_deterministic_per_seed() {
        let plan = FaultPlan::none().with_seed(42).with_transfer_failures(0.5);
        let draw = |plan: &FaultPlan| -> Vec<bool> {
            let mut inj = FaultInjector::new(plan);
            (0..64).map(|_| inj.transfer_fails()).collect()
        };
        assert_eq!(draw(&plan), draw(&plan));
        let other = plan.clone().with_seed(43);
        assert_ne!(draw(&plan), draw(&other), "different seeds diverge");
        let fails = draw(&plan).iter().filter(|&&f| f).count();
        assert!(
            (10..=54).contains(&fails),
            "rate 0.5 over 64 draws, got {fails}"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let plan = FaultPlan::none().with_transfer_failures(0.1);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.backoff(1), 100.0e-6);
        assert_eq!(inj.backoff(2), 200.0e-6);
        assert_eq!(inj.backoff(3), 400.0e-6);
        assert_eq!(inj.backoff(20), plan.retry_backoff_cap_s);
    }

    #[test]
    fn earliest_dropout_wins() {
        let plan = FaultPlan::none().with_dropout(2, 0.9).with_dropout(2, 0.3);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.down_at(2), Some(SimTime::from_secs(0.3)));
        assert_eq!(inj.down_at(0), None);
    }

    #[test]
    fn unavailable_is_a_dropout_at_zero() {
        let plan = FaultPlan::none().with_unavailable(2);
        assert_eq!(FaultInjector::new(&plan).down_at(2), Some(SimTime::ZERO));
    }

    #[test]
    fn miscalibration_activates_the_plan() {
        let plan = FaultPlan::none().with_tpu_miscalibration(1.5, 0.25);
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan);
        let m = inj.miscalibration().expect("scheduled");
        assert_eq!(m.gain, 1.5);
        assert_eq!(m.bias, 0.25);
        assert_eq!(
            FaultInjector::new(&FaultPlan::none()).miscalibration(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "identity miscalibration")]
    fn rejects_identity_miscalibration() {
        let _ = FaultPlan::none().with_tpu_miscalibration(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "failure rate")]
    fn rejects_certain_failure() {
        let _ = FaultPlan::none().with_transfer_failures(1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_device() {
        let _ = FaultPlan::none().with_dropout(3, 0.0);
    }
}
