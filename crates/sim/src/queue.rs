use std::collections::VecDeque;

use shmt_trace::TraceSink;

use crate::time::SimTime;

/// The pair of queues SHMT's kernel driver maintains per device: "one
/// serves as the incoming queue and the other as the completion queue"
/// (paper §3.3). The incoming side holds dispatched-but-unstarted work;
/// the completion side holds finished work awaiting aggregation. Both
/// keep occupancy statistics so imbalance ("the incoming queue of a
/// hardware device has more pending items than others", §3.4) is
/// observable.
#[derive(Debug, Clone)]
pub struct QueuePair<T> {
    incoming: VecDeque<(SimTime, T)>,
    completed: VecDeque<(SimTime, T)>,
    enqueued: usize,
    stolen_away: usize,
    max_depth: usize,
}

impl<T> QueuePair<T> {
    /// Creates an empty pair.
    pub fn new() -> Self {
        QueuePair {
            incoming: VecDeque::new(),
            completed: VecDeque::new(),
            enqueued: 0,
            stolen_away: 0,
            max_depth: 0,
        }
    }

    /// Clears all queue state for re-use while keeping both deques'
    /// capacity — the runtime pools whole queue pairs across runs so a
    /// warm run's enqueues never allocate.
    pub fn reset(&mut self) {
        self.incoming.clear();
        self.completed.clear();
        self.enqueued = 0;
        self.stolen_away = 0;
        self.max_depth = 0;
    }

    /// Enqueues work on the incoming side at virtual time `at`.
    pub fn enqueue(&mut self, at: SimTime, item: T) {
        self.incoming.push_back((at, item));
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.incoming.len());
    }

    /// [`QueuePair::enqueue`], sampling the resulting incoming-queue depth
    /// into `sink` as the gauge series `gauge_name` — the paper's §3.4
    /// imbalance signal over virtual time.
    pub fn enqueue_traced(
        &mut self,
        at: SimTime,
        item: T,
        gauge_name: &str,
        sink: &mut dyn TraceSink,
    ) {
        self.enqueue(at, item);
        if sink.enabled() {
            sink.gauge(gauge_name, at.as_secs(), self.incoming.len() as f64);
        }
    }

    /// Takes the next item from the front of the incoming queue.
    pub fn pop_front(&mut self) -> Option<T> {
        self.incoming.pop_front().map(|(_, item)| item)
    }

    /// Withdraws the most recently enqueued pending item (the victim side
    /// of a steal).
    pub fn steal_back(&mut self) -> Option<T> {
        let taken = self.incoming.pop_back().map(|(_, item)| item);
        if taken.is_some() {
            self.stolen_away += 1;
        }
        taken
    }

    /// Moves a finished item to the completion queue at time `at`.
    pub fn complete(&mut self, at: SimTime, item: T) {
        self.completed.push_back((at, item));
    }

    /// Drains the completion queue in completion order.
    pub fn drain_completed(&mut self) -> impl Iterator<Item = (SimTime, T)> + '_ {
        self.completed.drain(..)
    }

    /// Pending items on the incoming side.
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }

    /// `true` when no work is pending.
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
    }

    /// Iterates over pending items front to back.
    pub fn iter_pending(&self) -> impl Iterator<Item = &T> {
        self.incoming.iter().map(|(_, item)| item)
    }

    /// Peeks at the item a steal would take.
    pub fn peek_back(&self) -> Option<&T> {
        self.incoming.back().map(|(_, item)| item)
    }

    /// Peeks at the item a pop would take.
    pub fn peek_front(&self) -> Option<&T> {
        self.incoming.front().map(|(_, item)| item)
    }

    /// Total items ever enqueued.
    pub fn total_enqueued(&self) -> usize {
        self.enqueued
    }

    /// Items withdrawn by other devices' steals.
    pub fn total_stolen_away(&self) -> usize {
        self.stolen_away
    }

    /// Deepest the incoming queue ever got.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

impl<T> Default for QueuePair<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_on_incoming() {
        let mut q = QueuePair::new();
        q.enqueue(SimTime::ZERO, 1);
        q.enqueue(SimTime::ZERO, 2);
        q.enqueue(SimTime::ZERO, 3);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.peek_front(), Some(&2));
        assert_eq!(q.peek_back(), Some(&3));
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn steals_come_from_the_back() {
        let mut q = QueuePair::new();
        for i in 0..4 {
            q.enqueue(SimTime::ZERO, i);
        }
        assert_eq!(q.steal_back(), Some(3));
        assert_eq!(q.steal_back(), Some(2));
        assert_eq!(q.total_stolen_away(), 2);
        assert_eq!(q.pop_front(), Some(0));
    }

    #[test]
    fn completion_queue_preserves_order_and_times() {
        let mut q: QueuePair<&str> = QueuePair::new();
        q.complete(SimTime::from_secs(2.0), "b");
        q.complete(SimTime::from_secs(3.0), "c");
        let drained: Vec<_> = q.drain_completed().collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (SimTime::from_secs(2.0), "b"));
        assert!(q.drain_completed().next().is_none());
    }

    #[test]
    fn stats_track_depth_and_volume() {
        let mut q = QueuePair::new();
        for i in 0..5 {
            q.enqueue(SimTime::ZERO, i);
        }
        q.pop_front();
        q.enqueue(SimTime::ZERO, 9);
        assert_eq!(q.total_enqueued(), 6);
        assert_eq!(q.max_depth(), 5);
        assert!(!q.is_idle());
        assert_eq!(q.iter_pending().count(), 5);
    }
}
