use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration of virtual time, in seconds.
pub type Duration = f64;

/// An instant on the virtual clock, in seconds since simulation start.
///
/// `SimTime` is a thin newtype over `f64` that keeps instants and durations
/// from being mixed up and provides a total order (times are never NaN by
/// construction — all arithmetic goes through checked constructors).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid simulation time {secs}"
        );
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(&self, earlier: SimTime) -> Duration {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        debug_assert!(rhs.is_finite() && rhs >= 0.0, "invalid duration {rhs}");
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.0 - rhs.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("sim times are never NaN")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(1.5) + 0.5;
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!(t - SimTime::from_secs(0.5), 1.5);
        assert_eq!(t.since(SimTime::from_secs(3.0)), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn negative_time_rejected() {
        SimTime::from_secs(-1.0);
    }
}
