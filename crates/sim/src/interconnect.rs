use shmt_trace::{DeviceId, EventKind, NullSink, TraceSink};

use crate::time::{Duration, SimTime};

/// A completed bus transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Instant the transfer began moving on the bus.
    pub start: SimTime,
    /// Instant the last byte arrived.
    pub end: SimTime,
    /// Bytes moved.
    pub bytes: usize,
}

impl Transfer {
    /// Wall time the transfer occupied the bus.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// The shared system interconnect between main memory and device memories.
///
/// The prototype moves data over the on-board PCIe interface backed by a
/// 25.6 GB/s LPDDR4 main memory (paper §4.1). Transfers serialize on the
/// bus: a transfer issued while another is in flight queues behind it.
///
/// # Examples
///
/// ```
/// use hetsim::{Interconnect, SimTime};
///
/// let mut bus = Interconnect::jetson_prototype();
/// let t1 = bus.transfer(SimTime::ZERO, 1 << 20);
/// let t2 = bus.transfer(SimTime::ZERO, 1 << 20);
/// assert!(t2.start >= t1.end, "transfers serialize");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    bandwidth: f64,
    latency: Duration,
    free_at: SimTime,
    total_bytes: u64,
    total_busy: Duration,
}

impl Interconnect {
    /// Creates a bus with the given bandwidth (bytes/second) and
    /// per-transfer latency (seconds).
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is non-positive or latency is negative.
    pub fn new(bandwidth_bytes_per_s: f64, latency_s: Duration) -> Self {
        assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Interconnect {
            bandwidth: bandwidth_bytes_per_s,
            latency: latency_s,
            free_at: SimTime::ZERO,
            total_bytes: 0,
            total_busy: 0.0,
        }
    }

    /// The prototype's 25.6 GB/s shared memory with a PCIe-class 10 µs
    /// transfer setup latency.
    pub fn jetson_prototype() -> Self {
        Interconnect::new(25.6e9, 10.0e-6)
    }

    /// Bus bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Moves `bytes` across the bus, no earlier than `ready`; returns the
    /// transfer's occupancy window. Zero-byte transfers complete instantly
    /// without touching the bus.
    pub fn transfer(&mut self, ready: SimTime, bytes: usize) -> Transfer {
        self.transfer_traced(ready, bytes, 0, 0, &mut NullSink)
    }

    /// [`Interconnect::transfer`], emitting a `TransferStart`/`TransferEnd`
    /// span for the bus occupancy window, a `bus.bytes` counter, and a
    /// `bus.busy_s` occupancy gauge into `sink`.
    pub fn transfer_traced(
        &mut self,
        ready: SimTime,
        bytes: usize,
        hlop: usize,
        device: DeviceId,
        sink: &mut dyn TraceSink,
    ) -> Transfer {
        if bytes == 0 {
            return Transfer {
                start: ready,
                end: ready,
                bytes: 0,
            };
        }
        let start = self.free_at.max(ready);
        let dur = self.latency + bytes as f64 / self.bandwidth;
        let end = start + dur;
        self.free_at = end;
        self.total_bytes += bytes as u64;
        self.total_busy += dur;
        if sink.enabled() {
            sink.record(
                start.as_secs(),
                EventKind::TransferStart {
                    hlop,
                    device,
                    bytes,
                },
            );
            sink.record(
                end.as_secs(),
                EventKind::TransferEnd {
                    hlop,
                    device,
                    bytes,
                },
            );
            sink.counter("bus.bytes", bytes as f64);
            sink.gauge("bus.busy_s", end.as_secs(), self.total_busy);
        }
        Transfer { start, end, bytes }
    }

    /// Pure cost query: how long would moving `bytes` take on an idle bus?
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if bytes == 0 {
            0.0
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total time the bus was occupied.
    pub fn total_busy(&self) -> Duration {
        self.total_busy
    }

    /// Resets the bus to idle at the epoch.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.total_bytes = 0;
        self.total_busy = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let bus = Interconnect::new(1.0e9, 1.0e-6);
        let t1 = bus.transfer_time(1_000_000);
        let t2 = bus.transfer_time(2_000_000);
        assert!(t2 > t1);
        assert!((t1 - (1.0e-6 + 1.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn transfers_serialize_and_account() {
        let mut bus = Interconnect::new(1.0e9, 0.0);
        let a = bus.transfer(SimTime::ZERO, 500_000_000);
        let b = bus.transfer(SimTime::ZERO, 500_000_000);
        assert_eq!(a.end, b.start);
        assert_eq!(bus.total_bytes(), 1_000_000_000);
        assert!((bus.total_busy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let mut bus = Interconnect::jetson_prototype();
        let t = bus.transfer(SimTime::from_secs(2.0), 0);
        assert_eq!(t.start, t.end);
        assert_eq!(bus.total_bytes(), 0);
    }

    #[test]
    fn late_ready_delays_start() {
        let mut bus = Interconnect::new(1.0e9, 0.0);
        let t = bus.transfer(SimTime::from_secs(1.0), 1000);
        assert_eq!(t.start, SimTime::from_secs(1.0));
    }
}
