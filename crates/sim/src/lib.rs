//! `hetsim` — a virtual-time heterogeneous platform model.
//!
//! The SHMT paper's prototype is a Jetson Nano (quad-core ARM + 128-core
//! Maxwell GPU) with an M.2 Edge TPU, sharing data through main memory over
//! PCIe (§4.1). That hardware is unavailable here, so this crate models the
//! platform's *timing and energy behaviour* while the actual computation is
//! performed in software by the kernels crate:
//!
//! * [`SimTime`]/[`Duration`] — virtual time in seconds.
//! * [`DeviceProfile`]/[`DeviceTimeline`] — a processing unit's cost model
//!   (launch overhead + work/throughput) and its busy/wait bookkeeping.
//! * [`Interconnect`] — the shared PCIe/LPDDR4 bus: transfers serialize,
//!   with per-transfer latency and finite bandwidth (25.6 GB/s on the
//!   prototype).
//! * [`EnergyMeter`] — integrates platform idle power plus per-device
//!   active power over busy intervals (the paper's wall-plug power meter,
//!   §5.5).
//! * [`MemoryTracker`] — peak-footprint accounting for Fig 11.
//! * [`QueuePair`] — the per-device incoming/completion queue pair of the
//!   SHMT kernel driver (§3.3).
//! * [`EventQueue`] — a deterministic virtual-time event heap.
//! * [`FaultPlan`]/[`FaultInjector`] — a seeded, deterministic schedule of
//!   hardware misbehaviour (slowdown windows, transient transfer failures,
//!   device dropout, TPU output miscalibration) that the runtime consults;
//!   the empty plan is inert and leaves runs bit-identical.
//!
//! The SHMT runtime (the `shmt` crate) drives these pieces: it decides what
//! executes where, charges each HLOP's compute and transfer costs here, and
//! reads back makespan, energy, and overhead statistics.
//!
//! Every cost-charging entry point has a `*_traced` variant taking a
//! `shmt_trace::TraceSink` ([`DeviceTimeline::execute_traced`],
//! [`Interconnect::transfer_traced`], [`QueuePair::enqueue_traced`],
//! [`EnergyMeter::record_busy_traced`]); the untraced methods call them
//! with a `NullSink`, so there is a single code path and tracing can never
//! change simulated behaviour.
//!
//! # Examples
//!
//! ```
//! use hetsim::{DeviceKind, DeviceProfile, DeviceTimeline, SimTime};
//!
//! let gpu = DeviceProfile::jetson_gpu(1.0e9);
//! let mut timeline = DeviceTimeline::new(gpu);
//! let done = timeline.execute(SimTime::ZERO, 1.0e8); // 0.1 s of work
//! assert!(done.as_secs() > 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod event;
mod fault;
mod interconnect;
mod memory;
mod power;
mod queue;
mod time;

pub use device::{DeviceKind, DeviceProfile, DeviceTimeline, Precision};
pub use event::EventQueue;
pub use fault::{
    Dropout, FaultInjector, FaultPlan, FaultReport, SlowdownWindow, TpuMiscalibration,
};
pub use interconnect::{Interconnect, Transfer};
pub use memory::MemoryTracker;
pub use power::{edp, EnergyBreakdown, EnergyMeter};
pub use queue::QueuePair;
pub use time::{Duration, SimTime};
