use shmt_trace::{DeviceId, EventKind, NullSink, TraceSink};

use crate::time::{Duration, SimTime};

/// The kinds of processing units on the modeled platform (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Quad-core ARM Cortex-A57.
    Cpu,
    /// 128-core Maxwell GPU.
    Gpu,
    /// Google Edge TPU (M.2 accelerator).
    EdgeTpu,
}

impl DeviceKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::Cpu => "CPU",
            DeviceKind::Gpu => "GPU",
            DeviceKind::EdgeTpu => "EdgeTPU",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Native arithmetic precision of a device (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE single precision — exact for our purposes.
    F32,
    /// 8-bit integer with affine quantization — the Edge TPU data path.
    Int8,
}

/// The static cost/power model of one processing unit.
///
/// Throughput is expressed in *work units per second*, where a work unit is
/// one element-op of a reference element-wise kernel; kernels report their
/// work per element and the SHMT calibration tables scale per-benchmark
/// device speed ratios on top of this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which processing unit this is.
    pub kind: DeviceKind,
    /// Native precision of the compute path.
    pub precision: Precision,
    /// Fixed cost to launch one HLOP (kernel launch / inference setup).
    pub launch_overhead: Duration,
    /// Sustained throughput in work units per second.
    pub throughput: f64,
    /// Additional power drawn while busy, above platform idle (watts).
    pub active_power_w: f64,
    /// Private device memory, if any (the Edge TPU has 8 MB).
    pub device_memory_bytes: Option<usize>,
}

impl DeviceProfile {
    /// The prototype's Maxwell GPU at the given sustained throughput.
    /// Active power from the measured 4.67 W GPU-baseline peak minus the
    /// 3.02 W platform idle (§5.5).
    pub fn jetson_gpu(throughput: f64) -> Self {
        DeviceProfile {
            kind: DeviceKind::Gpu,
            precision: Precision::F32,
            launch_overhead: 30.0e-6,
            throughput,
            active_power_w: 1.65,
            device_memory_bytes: None,
        }
    }

    /// The prototype's Edge TPU. Active power from the measured 5.23 W
    /// SHMT peak minus the GPU-baseline peak (§5.5); 8 MB device memory
    /// (§4.1). Inference setup dominates the per-HLOP launch overhead;
    /// the double-buffered runtime amortizes most but not all of it.
    pub fn edge_tpu(throughput: f64) -> Self {
        DeviceProfile {
            kind: DeviceKind::EdgeTpu,
            precision: Precision::Int8,
            launch_overhead: 150.0e-6,
            throughput,
            active_power_w: 0.56,
            device_memory_bytes: Some(8 * 1024 * 1024),
        }
    }

    /// The prototype's ARM A57 CPU complex.
    pub fn arm_cpu(throughput: f64) -> Self {
        DeviceProfile {
            kind: DeviceKind::Cpu,
            precision: Precision::F32,
            launch_overhead: 8.0e-6,
            throughput,
            active_power_w: 0.90,
            device_memory_bytes: None,
        }
    }

    /// Time to execute `work_units` of compute as one HLOP.
    ///
    /// # Panics
    ///
    /// Panics if `work_units` is negative or the profile's throughput is
    /// non-positive.
    pub fn exec_time(&self, work_units: f64) -> Duration {
        assert!(work_units >= 0.0, "negative work");
        assert!(self.throughput > 0.0, "non-positive throughput");
        self.launch_overhead + work_units / self.throughput
    }
}

/// Busy/idle bookkeeping for one device over a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTimeline {
    profile: DeviceProfile,
    free_at: SimTime,
    busy: Duration,
    transfer_wait: Duration,
    completed: usize,
}

impl DeviceTimeline {
    /// Creates an idle timeline at the epoch.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::starting_at(profile, SimTime::ZERO)
    }

    /// Creates an idle timeline that becomes available at `start` (e.g.
    /// after a serial scheduling phase).
    pub fn starting_at(profile: DeviceProfile, start: SimTime) -> Self {
        DeviceTimeline {
            profile,
            free_at: start,
            busy: 0.0,
            transfer_wait: 0.0,
            completed: 0,
        }
    }

    /// Blocks the device until `t` (waiting on an output transfer in
    /// synchronous mode); the stall is accounted as transfer wait.
    pub fn stall_until(&mut self, t: SimTime) {
        self.transfer_wait += t.since(self.free_at);
        self.free_at = self.free_at.max(t);
    }

    /// The device's static profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Instant at which the device next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Total time the device sat idle waiting for input data that arrived
    /// after it became free (communication overhead, Table 3).
    pub fn transfer_wait(&self) -> Duration {
        self.transfer_wait
    }

    /// Number of HLOPs completed.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Executes `work_units` of compute, starting no earlier than
    /// `data_ready`. Returns the completion instant.
    pub fn execute(&mut self, data_ready: SimTime, work_units: f64) -> SimTime {
        self.execute_traced(data_ready, work_units, 0, 0, &mut NullSink)
    }

    /// [`DeviceTimeline::execute`], emitting a `ComputeStart`/`ComputeEnd`
    /// span into `sink` that covers exactly the busy interval charged to
    /// the device — summing a run's compute spans per device reproduces
    /// its `busy_time()` to the bit. The untraced `execute` is this method
    /// with a [`NullSink`], so tracing never changes behaviour.
    pub fn execute_traced(
        &mut self,
        data_ready: SimTime,
        work_units: f64,
        hlop: usize,
        device: DeviceId,
        sink: &mut dyn TraceSink,
    ) -> SimTime {
        let start = self.free_at.max(data_ready);
        // If the data arrived after we went idle, we waited on the bus.
        self.transfer_wait += data_ready.since(self.free_at);
        let dur = self.profile.exec_time(work_units);
        self.busy += dur;
        self.free_at = start + dur;
        self.completed += 1;
        if sink.enabled() {
            sink.record(start.as_secs(), EventKind::ComputeStart { hlop, device });
            sink.record(
                self.free_at.as_secs(),
                EventKind::ComputeEnd { hlop, device },
            );
        }
        self.free_at
    }

    /// Charges `work_units` of *auxiliary* busy time — verification and
    /// repair work that is not an HLOP of the plan — starting no earlier
    /// than `ready`. Advances `free_at` and `busy` exactly like
    /// [`DeviceTimeline::execute`] but does **not** count a completed
    /// HLOP (the scheduler's completed-count invariant stays intact) and
    /// emits no compute span; the caller owns the trace events for this
    /// interval. Returns the completion instant.
    pub fn occupy(&mut self, ready: SimTime, work_units: f64) -> SimTime {
        let start = self.free_at.max(ready);
        let dur = self.profile.exec_time(work_units);
        self.busy += dur;
        self.free_at = start + dur;
        self.free_at
    }

    /// Resets the timeline to idle at the epoch, keeping the profile.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.busy = 0.0;
        self.transfer_wait = 0.0;
        self.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_time_includes_launch_overhead() {
        let p = DeviceProfile::jetson_gpu(1.0e6);
        let t = p.exec_time(1.0e6);
        assert!((t - (1.0 + 30.0e-6)).abs() < 1e-9);
    }

    #[test]
    fn execute_serializes_on_the_device() {
        let mut d = DeviceTimeline::new(DeviceProfile::arm_cpu(1.0e6));
        let t1 = d.execute(SimTime::ZERO, 1.0e6);
        let t2 = d.execute(SimTime::ZERO, 1.0e6);
        assert!(t2 > t1);
        assert!((t2.as_secs() - 2.0).abs() < 1e-3);
        assert_eq!(d.completed(), 2);
    }

    #[test]
    fn waiting_for_late_data_is_recorded() {
        let mut d = DeviceTimeline::new(DeviceProfile::arm_cpu(1.0e6));
        d.execute(SimTime::from_secs(0.5), 1.0e6);
        assert!((d.transfer_wait() - 0.5).abs() < 1e-9);
        // Second HLOP's data is ready before the device is free: no wait.
        d.execute(SimTime::from_secs(0.1), 1.0e6);
        assert!((d.transfer_wait() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state_but_keeps_profile() {
        let mut d = DeviceTimeline::new(DeviceProfile::edge_tpu(2.0e6));
        d.execute(SimTime::ZERO, 1.0e6);
        d.reset();
        assert_eq!(d.free_at(), SimTime::ZERO);
        assert_eq!(d.busy_time(), 0.0);
        assert_eq!(d.completed(), 0);
        assert_eq!(d.profile().kind, DeviceKind::EdgeTpu);
    }

    #[test]
    fn occupy_charges_busy_time_without_a_completion() {
        let mut d = DeviceTimeline::new(DeviceProfile::arm_cpu(1.0e6));
        let t1 = d.execute(SimTime::ZERO, 1.0e6);
        let t2 = d.occupy(SimTime::ZERO, 1.0e6);
        assert!(t2 > t1, "occupy serializes after prior work");
        assert_eq!(d.completed(), 1, "occupy is not an HLOP completion");
        assert!((d.busy_time() - 2.0 * (1.0 + 8.0e-6)).abs() < 1e-9);
        // A later `ready` pushes the start without recording transfer wait.
        let wait_before = d.transfer_wait();
        d.occupy(t2 + 0.5, 1.0e6);
        assert_eq!(d.transfer_wait(), wait_before);
    }

    #[test]
    fn canonical_profiles_have_expected_precision() {
        assert_eq!(DeviceProfile::jetson_gpu(1.0).precision, Precision::F32);
        assert_eq!(DeviceProfile::edge_tpu(1.0).precision, Precision::Int8);
        assert!(DeviceProfile::edge_tpu(1.0).device_memory_bytes.is_some());
    }
}
