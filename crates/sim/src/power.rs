use shmt_trace::{NullSink, TraceSink};

use crate::device::DeviceKind;
use crate::time::Duration;

/// Energy totals for one run, split the way the paper's Fig 10 reports
/// them: the idle platform floor and the per-device active energy on top.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Platform idle power integrated over the makespan (joules).
    pub idle_j: f64,
    /// Active (above-idle) energy of all devices (joules).
    pub active_j: f64,
}

impl EnergyBreakdown {
    /// Total wall-plug energy.
    pub fn total_j(&self) -> f64 {
        self.idle_j + self.active_j
    }
}

/// Integrates platform power over a run, mirroring the paper's wall-plug
/// power meter (§5.5): a constant platform idle floor (3.02 W measured)
/// plus each device's active power over its busy time.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    idle_power_w: f64,
    active_j: f64,
    // Inline per-device accumulators (one per DeviceKind, with slack):
    // a meter is created per run, so heap-free bookkeeping matters for
    // the serve path's alloc-free steady state.
    per_device_j: [Option<(DeviceKind, f64)>; 4],
}

impl EnergyMeter {
    /// Creates a meter with the given platform idle power (watts).
    ///
    /// # Panics
    ///
    /// Panics if `idle_power_w` is negative.
    pub fn new(idle_power_w: f64) -> Self {
        assert!(idle_power_w >= 0.0, "idle power must be non-negative");
        EnergyMeter {
            idle_power_w,
            active_j: 0.0,
            per_device_j: [None; 4],
        }
    }

    /// The prototype's measured 3.02 W idle floor.
    pub fn jetson_prototype() -> Self {
        EnergyMeter::new(3.02)
    }

    /// Platform idle power.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Records `busy_s` seconds of activity on `device` drawing
    /// `active_power_w` above idle.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn record_busy(&mut self, device: DeviceKind, busy_s: Duration, active_power_w: f64) {
        self.record_busy_traced(device, busy_s, active_power_w, &mut NullSink);
    }

    /// [`EnergyMeter::record_busy`], accumulating the joules into `sink`'s
    /// `energy.active_j` counter as well.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn record_busy_traced(
        &mut self,
        device: DeviceKind,
        busy_s: Duration,
        active_power_w: f64,
        sink: &mut dyn TraceSink,
    ) {
        assert!(
            busy_s >= 0.0 && active_power_w >= 0.0,
            "negative energy record"
        );
        let joules = busy_s * active_power_w;
        self.active_j += joules;
        let slot = self
            .per_device_j
            .iter_mut()
            .find(|s| matches!(s, Some((k, _)) if *k == device) || s.is_none());
        match slot {
            Some(Some((_, j))) => *j += joules,
            Some(s @ None) => *s = Some((device, joules)),
            None => unreachable!("more device kinds than energy slots"),
        }
        if sink.enabled() {
            sink.counter("energy.active_j", joules);
        }
    }

    /// Active energy attributed to one device so far.
    pub fn device_energy_j(&self, device: DeviceKind) -> f64 {
        self.per_device_j
            .iter()
            .flatten()
            .find(|(k, _)| *k == device)
            .map_or(0.0, |(_, j)| *j)
    }

    /// Finalizes the run: idle energy is the idle floor integrated over the
    /// whole makespan (devices' active power already excludes it).
    pub fn finish(&self, makespan_s: Duration) -> EnergyBreakdown {
        assert!(makespan_s >= 0.0, "negative makespan");
        EnergyBreakdown {
            idle_j: self.idle_power_w * makespan_s,
            active_j: self.active_j,
        }
    }
}

/// Energy-delay product, the paper's secondary energy metric (Fig 10).
pub fn edp(energy_j: f64, delay_s: Duration) -> f64 {
    energy_j * delay_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_energy_scales_with_makespan() {
        let meter = EnergyMeter::new(3.0);
        let e = meter.finish(10.0);
        assert_eq!(e.idle_j, 30.0);
        assert_eq!(e.active_j, 0.0);
        assert_eq!(e.total_j(), 30.0);
    }

    #[test]
    fn active_energy_accumulates_per_device() {
        let mut meter = EnergyMeter::jetson_prototype();
        meter.record_busy(DeviceKind::Gpu, 2.0, 1.65);
        meter.record_busy(DeviceKind::EdgeTpu, 1.0, 0.56);
        meter.record_busy(DeviceKind::Gpu, 1.0, 1.65);
        assert!((meter.device_energy_j(DeviceKind::Gpu) - 4.95).abs() < 1e-9);
        assert!((meter.device_energy_j(DeviceKind::EdgeTpu) - 0.56).abs() < 1e-9);
        assert_eq!(meter.device_energy_j(DeviceKind::Cpu), 0.0);
        let e = meter.finish(3.0);
        assert!((e.active_j - 5.51).abs() < 1e-9);
        assert!((e.idle_j - 9.06).abs() < 1e-9);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        assert_eq!(edp(10.0, 2.0), 20.0);
    }
}
