use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic min-heap of timestamped events.
///
/// Events that share a timestamp pop in insertion order (FIFO), which keeps
/// simulations reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use hetsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "later");
/// q.push(SimTime::from_secs(1.0), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "sooner")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; break timestamp ties by insertion order.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        self.heap.push(Entry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
